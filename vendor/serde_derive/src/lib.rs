//! Derive macros for the vendored `serde` stand-in.
//!
//! Parses the item token stream directly (no `syn`/`quote` available offline)
//! and emits `Serialize`/`Deserialize` impls against the crate's `Value`
//! model. Supported shapes — the ones this workspace uses:
//!
//! * structs with named fields, including simple generic parameters
//!   (`struct Record<T> { ... }`) and `#[serde(default)]` on fields;
//! * enums with unit variants and struct variants (externally tagged:
//!   `"Variant"` / `{"Variant": {..fields..}}`, matching real serde).

#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    default: bool,
}

enum Body {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    /// `None` for unit variants, field names for struct variants.
    fields: Option<Vec<Field>>,
}

struct Item {
    name: String,
    generics: Vec<String>,
    body: Body,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();

    // Skip outer attributes and visibility.
    skip_attrs(&mut toks);
    skip_visibility(&mut toks);

    let kind = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };

    let generics = parse_generics(&mut toks);

    let body_group = loop {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive: tuple structs are not supported (`{name}`)")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                panic!("serde_derive: unit structs are not supported (`{name}`)")
            }
            Some(_) => continue, // e.g. `where` clauses are not supported but skip gracefully
            None => panic!("serde_derive: no body found for `{name}`"),
        }
    };

    let body = match kind.as_str() {
        "struct" => Body::Struct(parse_fields(body_group.stream())),
        "enum" => Body::Enum(parse_variants(body_group.stream())),
        other => panic!("serde_derive: cannot derive for `{other}`"),
    };
    Item {
        name,
        generics,
        body,
    }
}

type Peekable = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Skips attributes; returns whether any was `#[serde(default)]`.
fn skip_attrs(toks: &mut Peekable) -> bool {
    let mut has_default = false;
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.next() {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    if let Some(TokenTree::Ident(i)) = inner.first() {
                        if i.to_string() == "serde" {
                            if let Some(TokenTree::Group(args)) = inner.get(1) {
                                let text = args.stream().to_string();
                                if text.split(',').any(|a| a.trim() == "default") {
                                    has_default = true;
                                }
                            }
                        }
                    }
                }
            }
            _ => return has_default,
        }
    }
}

fn skip_visibility(toks: &mut Peekable) {
    if let Some(TokenTree::Ident(i)) = toks.peek() {
        if i.to_string() == "pub" {
            toks.next();
            // `pub(crate)` etc.
            if let Some(TokenTree::Group(g)) = toks.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    toks.next();
                }
            }
        }
    }
}

/// Parses `<A, B, ...>` if present; only plain type parameters are supported.
fn parse_generics(toks: &mut Peekable) -> Vec<String> {
    match toks.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Vec::new(),
    }
    toks.next();
    let mut depth = 1usize;
    let mut params = Vec::new();
    let mut expect_param = true;
    for tok in toks.by_ref() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expect_param = true,
            TokenTree::Ident(i) if depth == 1 && expect_param => {
                params.push(i.to_string());
                expect_param = false;
            }
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                panic!("serde_derive: lifetime parameters are not supported")
            }
            _ => {}
        }
    }
    params
}

fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let default = skip_attrs(&mut toks);
        skip_visibility(&mut toks);
        let name = match toks.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after `{name}`, got {other:?}"),
        }
        // Skip the type: consume until a top-level `,` (angle brackets tracked;
        // grouped tokens like `[f64; 3]` arrive as single trees).
        let mut angle = 0i32;
        for tok in toks.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
        fields.push(Field { name, default });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut toks);
        let name = match toks.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let mut fields = None;
        // Consume up to the `,` separating variants.
        while let Some(tok) = toks.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    toks.next();
                    break;
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    fields = Some(parse_fields(g.stream()));
                    toks.next();
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    panic!("serde_derive: tuple variants are not supported (`{name}`)")
                }
                _ => {
                    toks.next();
                }
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// `impl<T: Bound, ...>` header and `Name<T, ...>` type, given the trait bound.
fn impl_header(item: &Item, bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), item.name.clone())
    } else {
        let params: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: {bound}"))
            .collect();
        (
            format!("<{}>", params.join(", ")),
            format!("{}<{}>", item.name, item.generics.join(", ")),
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let (generics, ty) = impl_header(item, "::serde::Serialize");
    let body = match &item.body {
        Body::Struct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0})),",
                        f.name
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{pushes}])")
        }
        Body::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| match &v.fields {
                    None => format!(
                        "{}::{1} => ::serde::Value::Str(\"{1}\".to_string()),",
                        item.name, v.name
                    ),
                    Some(fields) => {
                        let binds = fields
                            .iter()
                            .map(|f| f.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let pushes: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{0}\".to_string(), ::serde::Serialize::to_value({0})),",
                                    f.name
                                )
                            })
                            .collect();
                        format!(
                            "{}::{1} {{ {binds} }} => ::serde::Value::Object(::std::vec![(\
                             \"{1}\".to_string(), \
                             ::serde::Value::Object(::std::vec![{pushes}]))]),",
                            item.name, v.name
                        )
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl{generics} ::serde::Serialize for {ty} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn field_expr(ty_name: &str, f: &Field, source: &str) -> String {
    let fallback = if f.default {
        "::core::default::Default::default()".to_string()
    } else {
        format!(
            "return ::core::result::Result::Err(\
             ::serde::Error::missing_field(\"{ty_name}\", \"{}\"))",
            f.name
        )
    };
    format!(
        "{0}: match {source}.get_field(\"{0}\") {{\n\
             ::core::option::Option::Some(__f) => ::serde::Deserialize::from_value(__f)?,\n\
             ::core::option::Option::None => {fallback},\n\
         }},",
        f.name
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (generics, ty) = impl_header(item, "::serde::Deserialize");
    let body = match &item.body {
        Body::Struct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| field_expr(&item.name, f, "__v"))
                .collect();
            format!("::core::result::Result::Ok({} {{ {inits} }})", item.name)
        }
        Body::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| v.fields.is_none())
                .map(|v| {
                    format!(
                        "\"{1}\" => ::core::result::Result::Ok({0}::{1}),",
                        item.name, v.name
                    )
                })
                .collect();
            let struct_arms: String = variants
                .iter()
                .filter_map(|v| v.fields.as_ref().map(|f| (v, f)))
                .map(|(v, fields)| {
                    let inits: String = fields
                        .iter()
                        .map(|f| field_expr(&item.name, f, "__inner"))
                        .collect();
                    format!(
                        "\"{1}\" => ::core::result::Result::Ok({0}::{1} {{ {inits} }}),",
                        item.name, v.name
                    )
                })
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::core::result::Result::Err(\
                             ::serde::Error::unknown_variant(\"{0}\", __other)),\n\
                     }},\n\
                     ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                         let (__tag, __inner) = &__pairs[0];\n\
                         match __tag.as_str() {{\n\
                             {struct_arms}\n\
                             __other => ::core::result::Result::Err(\
                                 ::serde::Error::unknown_variant(\"{0}\", __other)),\n\
                         }}\n\
                     }}\n\
                     __other => ::core::result::Result::Err(\
                         ::serde::Error::type_mismatch(\"enum `{0}`\", __other)),\n\
                 }}",
                item.name
            )
        }
    };
    format!(
        "impl{generics} ::serde::Deserialize for {ty} {{\n\
             fn from_value(__v: &::serde::Value) \
                 -> ::core::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}

//! Fleet-level fault plans: which devices are disrupted, how, and when.
//!
//! A [`FleetFaultPlan`] assigns at most one [`DeviceFault`] per device over
//! simulated time. Fault *times* are fractions of the fleet horizon (the
//! last completion on the slowest device), so one plan is meaningful at any
//! trace scale and tenant count; [`FleetFaultPlan::resolve`] turns the
//! fractions into absolute nanosecond windows for the tolerance pass.
//!
//! Three disruption shapes cover the production failure taxonomy:
//!
//! * **fail-stop** — the device dies at `at_frac` and never comes back;
//! * **fail-slow** — from `from_frac` on, device time dilates by
//!   `latency_factor`, and the whole run's media fault rates scale by
//!   `fault_scale` (wear-driven RBER growth pushing reads down the retry
//!   ladder — the per-device [`FaultProfile`] + [`RetryLadder`] reuse);
//! * **brownout** — unavailable in `[from_frac, until_frac)`, then healthy.
//!
//! The plan is deterministic and seedable: per-device fault seeds derive
//! from the fleet seed as `fleet_seed ⊕ FNV-1a(device_id)`
//! ([`derive_device_seed`]), so devices under one profile never draw faults
//! in lockstep. [`FleetFaultPlan::none`] is exactly PR 6 behaviour.

use ipu_flash::{DeviceConfig, FaultProfile, RetryLadder};
use serde::{Deserialize, Serialize};

/// One device's disruption over the run. Times are fractions of the fleet
/// horizon in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DeviceFault {
    /// The device dies at `at_frac` of the horizon and never recovers.
    FailStop {
        /// When the device stops, as a fraction of the fleet horizon.
        at_frac: f64,
    },
    /// The device keeps serving but degrades: observed device time dilates
    /// by `latency_factor` from `from_frac` on, and the device's media
    /// fault rates are scaled by `fault_scale` for the whole run (modelling
    /// wear-driven RBER growth that predates the visible slowdown).
    FailSlow {
        /// When the latency dilation starts, as a fraction of the horizon.
        from_frac: f64,
        /// Multiplier on device service time from `from_frac` on (≥ 1).
        latency_factor: f64,
        /// Multiplier on the device's `FaultProfile` rates (≥ 1).
        fault_scale: f64,
    },
    /// The device is unavailable in `[from_frac, until_frac)`, then serves
    /// again — a transient brownout the health machine can recover from.
    Brownout {
        /// Window start, as a fraction of the fleet horizon.
        from_frac: f64,
        /// Window end (exclusive), as a fraction of the fleet horizon.
        until_frac: f64,
    },
}

/// FNV-1a over the little-endian bytes of a device id — same hash family
/// the shard router and replay cache use.
fn fnv1a(id: u64) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    id.to_le_bytes()
        .iter()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
            (h ^ u64::from(b)).wrapping_mul(PRIME)
        })
}

/// SplitMix64 — the same counter-hash family the flash fault profile draws
/// with, reimplemented here so the fleet crate stays off flash internals.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-device fault seed: `fleet_seed ⊕ FNV-1a(device_id)`. Every device
/// under the same [`FaultProfile`] draws an independent fault stream, so a
/// shared profile never faults the fleet in lockstep.
pub fn derive_device_seed(fleet_seed: u64, device: usize) -> u64 {
    fleet_seed ^ fnv1a(device as u64)
}

/// Deterministic, seedable per-device disruptions over simulated time.
/// The default ([`FleetFaultPlan::none`]) is inert: no device is disrupted
/// and the tolerance machinery never runs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FleetFaultPlan {
    /// Fleet seed: folded into every per-device fault seed.
    #[serde(default)]
    pub seed: u64,
    /// Disrupted devices as `(device_id, fault)` pairs, device-id ascending
    /// (kept sorted for deterministic serialization — this struct is part
    /// of the replay-cache key).
    #[serde(default)]
    pub faults: Vec<(usize, DeviceFault)>,
}

/// One device's fault windows in absolute simulated time, resolved against
/// the fleet horizon by [`FleetFaultPlan::resolve`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResolvedFault {
    /// Device dies at this time and never recovers (`None` = never).
    pub dead_from_ns: Option<u64>,
    /// Unavailable window `[start, end)` (`None` = no brownout).
    pub brownout_ns: Option<(u64, u64)>,
    /// Service-time dilation from this time on (`None` = never slow).
    pub slow_from_ns: Option<u64>,
    /// Multiplier on device time once slow (≥ 1).
    pub latency_factor: f64,
}

impl ResolvedFault {
    /// Whether the device cannot serve a request in flight over
    /// `[dispatch, completion]`: it is past its fail-stop point, dies
    /// mid-flight, or the interval touches the brownout window.
    pub fn unavailable(&self, dispatch_ns: u64, completion_ns: u64) -> bool {
        if let Some(dead) = self.dead_from_ns {
            if completion_ns >= dead {
                return true;
            }
        }
        if let Some((from, until)) = self.brownout_ns {
            if dispatch_ns < until && completion_ns >= from {
                return true;
            }
        }
        false
    }

    /// Service-time multiplier at dispatch time `t` (1.0 when healthy).
    pub fn latency_factor_at(&self, t: u64) -> f64 {
        match self.slow_from_ns {
            Some(from) if t >= from => self.latency_factor,
            _ => 1.0,
        }
    }
}

impl FleetFaultPlan {
    /// The inert plan: no disruptions, PR 6 behaviour bit for bit.
    pub fn none() -> Self {
        FleetFaultPlan::default()
    }

    /// Whether this plan disrupts nothing.
    pub fn is_inert(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of disrupted devices.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan has no disruptions (mirrors [`Self::is_inert`]).
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Assigns `fault` to `device`, replacing any previous assignment and
    /// keeping the pair list device-id ascending.
    pub fn set(&mut self, device: usize, fault: DeviceFault) {
        match self.faults.binary_search_by_key(&device, |&(d, _)| d) {
            // ipu-lint: allow(panic-reachability) — index is the Ok value of binary_search on this same vec, in bounds by contract
            Ok(i) => self.faults[i].1 = fault,
            Err(i) => self.faults.insert(i, (device, fault)),
        }
    }

    /// The fault assigned to `device`, if any.
    pub fn fault_for(&self, device: usize) -> Option<&DeviceFault> {
        self.faults
            .binary_search_by_key(&device, |&(d, _)| d)
            .ok()
            .map(|i| &self.faults[i].1)
    }

    /// Fail-stops `k` devices at `at_frac`, never both halves of a mirror
    /// pair (`d` and `d ^ 1`), so mirrored fleets keep a live replica for
    /// every disrupted device. Device choice is a deterministic function of
    /// `seed`. `k` is clamped to the number of mirror pairs.
    pub fn fail_stop(devices: usize, k: usize, at_frac: f64, seed: u64) -> Self {
        assert!(devices >= 1, "need at least one device");
        assert!((0.0..=1.0).contains(&at_frac), "at_frac out of [0,1]");
        let pairs = devices.div_ceil(2);
        let k = k.min(pairs);
        // Draw k distinct mirror pairs, then one member of each.
        let mut remaining: Vec<usize> = (0..pairs).collect();
        let mut plan = FleetFaultPlan {
            seed,
            faults: Vec::with_capacity(k),
        };
        for i in 0..k {
            let r = splitmix64(seed.wrapping_add(i as u64));
            let pair = remaining.remove((r % remaining.len() as u64) as usize);
            let member = (2 * pair + (splitmix64(r) & 1) as usize).min(devices - 1);
            plan.set(member, DeviceFault::FailStop { at_frac });
        }
        plan
    }

    /// Human-readable summary, stable across runs (`none`, or e.g.
    /// `failstop:3@0.50` / `mixed:4`).
    pub fn label(&self) -> String {
        if self.is_inert() {
            return "none".to_string();
        }
        let mut stops = 0usize;
        let mut slows = 0usize;
        let mut brownouts = 0usize;
        let mut first_frac = None;
        for (_, fault) in &self.faults {
            match fault {
                DeviceFault::FailStop { at_frac } => {
                    stops += 1;
                    first_frac.get_or_insert(*at_frac);
                }
                DeviceFault::FailSlow { from_frac, .. } => {
                    slows += 1;
                    first_frac.get_or_insert(*from_frac);
                }
                DeviceFault::Brownout { from_frac, .. } => {
                    brownouts += 1;
                    first_frac.get_or_insert(*from_frac);
                }
            }
        }
        let frac = first_frac.unwrap_or(0.0);
        match (stops, slows, brownouts) {
            (n, 0, 0) => format!("failstop:{n}@{frac:.2}"),
            (0, n, 0) => format!("failslow:{n}@{frac:.2}"),
            (0, 0, n) => format!("brownout:{n}@{frac:.2}"),
            _ => format!("mixed:{}", self.faults.len()),
        }
    }

    /// Parses a CLI plan spec against a fleet of `devices`:
    ///
    /// * `none`
    /// * `failstop:<k>@<frac>` — k fail-stop devices at `frac` of the run
    /// * `failslow:<k>x<factor>@<frac>` — k devices dilate by `factor`
    /// * `brownout:<k>@<from>-<until>` — k devices out for the window
    ///
    /// Device choice uses the same pair-spread draw as
    /// [`FleetFaultPlan::fail_stop`], seeded by `seed`.
    pub fn parse(spec: &str, devices: usize, seed: u64) -> Result<Self, String> {
        if spec == "none" {
            return Ok(FleetFaultPlan::none());
        }
        let (kind, rest) = spec
            .split_once(':')
            .ok_or_else(|| format!("bad fault plan `{spec}` (try failstop:1@0.5)"))?;
        let parse_frac = |s: &str| -> Result<f64, String> {
            s.parse::<f64>()
                .ok()
                .filter(|f| (0.0..=1.0).contains(f))
                .ok_or_else(|| format!("bad fraction `{s}` in `{spec}` (want 0..1)"))
        };
        let parse_k = |s: &str| -> Result<usize, String> {
            s.parse::<usize>()
                .ok()
                .filter(|&k| k >= 1)
                .ok_or_else(|| format!("bad device count `{s}` in `{spec}`"))
        };
        match kind {
            "failstop" => {
                let (k, frac) = rest
                    .split_once('@')
                    .ok_or_else(|| format!("bad fault plan `{spec}` (failstop:<k>@<frac>)"))?;
                Ok(FleetFaultPlan::fail_stop(
                    devices,
                    parse_k(k)?,
                    parse_frac(frac)?,
                    seed,
                ))
            }
            "failslow" => {
                let (head, frac) = rest.split_once('@').ok_or_else(|| {
                    format!("bad fault plan `{spec}` (failslow:<k>x<factor>@<frac>)")
                })?;
                let (k, factor) = head.split_once('x').ok_or_else(|| {
                    format!("bad fault plan `{spec}` (failslow:<k>x<factor>@<frac>)")
                })?;
                let factor = factor
                    .parse::<f64>()
                    .ok()
                    .filter(|&f| f >= 1.0)
                    .ok_or_else(|| {
                        format!("bad latency factor `{factor}` in `{spec}` (want >= 1)")
                    })?;
                let from_frac = parse_frac(frac)?;
                let mut plan = FleetFaultPlan::fail_stop(devices, parse_k(k)?, from_frac, seed);
                for (_, fault) in plan.faults.iter_mut() {
                    *fault = DeviceFault::FailSlow {
                        from_frac,
                        latency_factor: factor,
                        fault_scale: factor,
                    };
                }
                Ok(plan)
            }
            "brownout" => {
                let (k, window) = rest.split_once('@').ok_or_else(|| {
                    format!("bad fault plan `{spec}` (brownout:<k>@<from>-<until>)")
                })?;
                let (from, until) = window.split_once('-').ok_or_else(|| {
                    format!("bad window `{window}` in `{spec}` (want <from>-<until>)")
                })?;
                let (from_frac, until_frac) = (parse_frac(from)?, parse_frac(until)?);
                if until_frac <= from_frac {
                    return Err(format!("empty brownout window in `{spec}`"));
                }
                let mut plan = FleetFaultPlan::fail_stop(devices, parse_k(k)?, from_frac, seed);
                for (_, fault) in plan.faults.iter_mut() {
                    *fault = DeviceFault::Brownout {
                        from_frac,
                        until_frac,
                    };
                }
                Ok(plan)
            }
            other => Err(format!(
                "unknown fault plan kind `{other}` (none | failstop | failslow | brownout)"
            )),
        }
    }

    /// The device's replay configuration under this plan: the fault seed is
    /// re-derived per device (independent draw streams even with no
    /// disruption assigned), and a fail-slow device gets its media fault
    /// rates scaled plus a retry ladder to walk — the wear-driven RBER ramp.
    pub fn device_config(&self, base: &DeviceConfig, device: usize) -> DeviceConfig {
        let mut cfg = base.clone();
        cfg.fault.seed = derive_device_seed(self.seed ^ base.fault.seed, device);
        if let Some(&DeviceFault::FailSlow { fault_scale, .. }) = self.fault_for(device) {
            if cfg.fault.is_inert() {
                // A fail-slow device with a pristine base profile still
                // degrades: seed a light media profile to scale up.
                let (light, _) = FaultProfile::named("light").expect("named profile");
                cfg.fault.read_fail = light.read_fail;
                cfg.fault.rber_spike = light.rber_spike;
                cfg.fault.rber_spike_factor = light.rber_spike_factor;
            }
            let clamp = |r: f64| (r * fault_scale).min(1.0);
            cfg.fault.read_fail = clamp(cfg.fault.read_fail);
            cfg.fault.rber_spike = clamp(cfg.fault.rber_spike);
            if cfg.retry.is_empty() {
                cfg.retry = RetryLadder::standard();
            }
        }
        cfg
    }

    /// Resolves every device's fault fractions against the fleet horizon.
    /// Returns one entry per device (healthy devices get the default).
    pub fn resolve(&self, devices: usize, horizon_ns: u64) -> Vec<ResolvedFault> {
        let at = |frac: f64| (frac * horizon_ns as f64) as u64;
        let mut out = vec![ResolvedFault::default(); devices];
        for &(device, fault) in &self.faults {
            if device >= devices {
                continue; // plan written for a larger fleet: ignore overflow
            }
            let slot = &mut out[device];
            match fault {
                DeviceFault::FailStop { at_frac } => slot.dead_from_ns = Some(at(at_frac)),
                DeviceFault::FailSlow {
                    from_frac,
                    latency_factor,
                    ..
                } => {
                    slot.slow_from_ns = Some(at(from_frac));
                    slot.latency_factor = latency_factor;
                }
                DeviceFault::Brownout {
                    from_frac,
                    until_frac,
                } => slot.brownout_ns = Some((at(from_frac), at(until_frac))),
            }
        }
        out
    }

    /// Validates fractions, factors and pair-list ordering.
    pub fn validate(&self) -> Result<(), String> {
        if !self.faults.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err("fault plan devices must be unique and ascending".into());
        }
        let frac_ok = |f: f64| (0.0..=1.0).contains(&f);
        for &(device, fault) in &self.faults {
            match fault {
                DeviceFault::FailStop { at_frac } if !frac_ok(at_frac) => {
                    return Err(format!("device {device}: at_frac {at_frac} out of [0,1]"));
                }
                DeviceFault::FailSlow {
                    from_frac,
                    latency_factor,
                    fault_scale,
                } if !frac_ok(from_frac) || latency_factor < 1.0 || fault_scale < 1.0 => {
                    return Err(format!(
                        "device {device}: bad fail-slow ({from_frac}, {latency_factor}, {fault_scale})"
                    ));
                }
                DeviceFault::Brownout {
                    from_frac,
                    until_frac,
                } if !frac_ok(from_frac) || !frac_ok(until_frac) || until_frac <= from_frac => {
                    return Err(format!(
                        "device {device}: bad brownout window [{from_frac}, {until_frac})"
                    ));
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_inert_and_resolves_to_nothing() {
        let plan = FleetFaultPlan::none();
        assert!(plan.is_inert());
        assert_eq!(plan.label(), "none");
        plan.validate().unwrap();
        let resolved = plan.resolve(4, 1_000_000);
        assert!(resolved.iter().all(|r| !r.unavailable(0, u64::MAX)));
        // ipu-lint: allow(float-eq) — 1.0 is the exact "no dilation" constant
        assert!(resolved.iter().all(|r| r.latency_factor_at(0) == 1.0));
    }

    #[test]
    fn per_device_seeds_decorrelate_fault_draws() {
        // Satellite fix: two devices under the same (non-inert) profile must
        // draw different fault sites. Pin it at the draw-stream level.
        let (base_profile, _) = FaultProfile::named("heavy").unwrap();
        let base = DeviceConfig {
            fault: base_profile,
            ..DeviceConfig::small_for_tests()
        };
        let plan = FleetFaultPlan::none();
        let a = plan.device_config(&base, 0);
        let b = plan.device_config(&base, 1);
        assert_ne!(a.fault.seed, b.fault.seed, "devices share a fault seed");
        let draws = |cfg: &DeviceConfig| -> Vec<bool> {
            (0..512)
                .map(|i| cfg.fault.program_fails(i, 0, 0, i))
                .collect()
        };
        assert_ne!(draws(&a), draws(&b), "fault sites are in lockstep");
        // And the derivation is the documented fleet_seed ⊕ FNV-1a(device).
        assert_eq!(a.fault.seed, derive_device_seed(base.fault.seed, 0));
    }

    #[test]
    fn fail_stop_spreads_across_mirror_pairs() {
        for seed in 0..32u64 {
            let plan = FleetFaultPlan::fail_stop(8, 3, 0.5, seed);
            assert_eq!(plan.len(), 3);
            plan.validate().unwrap();
            let devices: Vec<usize> = plan.faults.iter().map(|&(d, _)| d).collect();
            for w in devices.windows(2) {
                assert_ne!(w[0] ^ 1, w[1], "both halves of a pair died: {devices:?}");
            }
            // Deterministic: same seed, same plan.
            assert_eq!(plan, FleetFaultPlan::fail_stop(8, 3, 0.5, seed));
        }
        // k clamps to the pair count.
        assert_eq!(FleetFaultPlan::fail_stop(4, 99, 0.5, 1).len(), 2);
    }

    #[test]
    fn parse_round_trips_the_three_shapes() {
        let stop = FleetFaultPlan::parse("failstop:2@0.5", 8, 7).unwrap();
        assert_eq!(stop.len(), 2);
        assert!(stop.label().starts_with("failstop:2@0.50"));

        let slow = FleetFaultPlan::parse("failslow:1x4@0.25", 8, 7).unwrap();
        assert!(matches!(
            slow.faults.first(),
            Some((_, DeviceFault::FailSlow {
                latency_factor,
                ..
            // ipu-lint: allow(float-eq) — parsed verbatim from the spec string
            })) if *latency_factor == 4.0
        ));

        let brown = FleetFaultPlan::parse("brownout:1@0.3-0.6", 8, 7).unwrap();
        assert!(matches!(
            brown.faults.first(),
            Some((_, DeviceFault::Brownout { .. }))
        ));

        assert_eq!(
            FleetFaultPlan::parse("none", 8, 7).unwrap(),
            FleetFaultPlan::none()
        );
        assert!(FleetFaultPlan::parse("failstop:0@0.5", 8, 7).is_err());
        assert!(FleetFaultPlan::parse("failstop:1@1.5", 8, 7).is_err());
        assert!(FleetFaultPlan::parse("brownout:1@0.6-0.3", 8, 7).is_err());
        assert!(FleetFaultPlan::parse("gremlins:1@0.5", 8, 7).is_err());
    }

    #[test]
    fn resolved_windows_gate_availability() {
        let mut plan = FleetFaultPlan::none();
        plan.set(0, DeviceFault::FailStop { at_frac: 0.5 });
        plan.set(
            1,
            DeviceFault::Brownout {
                from_frac: 0.2,
                until_frac: 0.4,
            },
        );
        plan.set(
            2,
            DeviceFault::FailSlow {
                from_frac: 0.5,
                latency_factor: 3.0,
                fault_scale: 2.0,
            },
        );
        plan.validate().unwrap();
        let r = plan.resolve(4, 1_000);

        // Fail-stop: dead once the request would complete past t=500.
        assert!(!r[0].unavailable(100, 200));
        assert!(r[0].unavailable(400, 600), "dies mid-flight");
        assert!(r[0].unavailable(700, 800));

        // Brownout [200, 400): only requests overlapping the window fail.
        assert!(!r[1].unavailable(0, 150));
        assert!(r[1].unavailable(250, 300));
        assert!(r[1].unavailable(100, 250), "browns out mid-flight");
        assert!(!r[1].unavailable(400, 500), "recovered after the window");

        // Fail-slow: never unavailable, dilates after t=500.
        assert!(!r[2].unavailable(900, 950));
        // ipu-lint: allow(float-eq) — factors pass through resolve verbatim
        assert!(r[2].latency_factor_at(499) == 1.0);
        // ipu-lint: allow(float-eq) — factors pass through resolve verbatim
        assert!(r[2].latency_factor_at(500) == 3.0);

        // Healthy device untouched.
        assert!(!r[3].unavailable(0, u64::MAX));
    }

    #[test]
    fn fail_slow_device_config_scales_faults_and_installs_ladder() {
        let base = DeviceConfig::small_for_tests();
        assert!(base.fault.is_inert());
        let mut plan = FleetFaultPlan::none();
        plan.set(
            1,
            DeviceFault::FailSlow {
                from_frac: 0.0,
                latency_factor: 2.0,
                fault_scale: 4.0,
            },
        );
        let slow = plan.device_config(&base, 1);
        assert!(!slow.fault.is_inert(), "fail-slow device must draw faults");
        assert!(!slow.retry.is_empty(), "fail-slow device needs a ladder");
        slow.fault.validate().unwrap();
        // Other devices keep the inert base (reseeded only).
        let healthy = plan.device_config(&base, 0);
        assert!(healthy.fault.is_inert());
        assert!(healthy.retry.is_empty());
    }

    #[test]
    fn plans_serialize_deterministically() {
        let plan = FleetFaultPlan::fail_stop(8, 3, 0.5, 42);
        let a = serde_json::to_string(&plan).unwrap();
        let b = serde_json::to_string(&plan.clone()).unwrap();
        assert_eq!(a, b);
        let back: FleetFaultPlan = serde_json::from_str(&a).unwrap();
        assert_eq!(back, plan);
        // Legacy/absent fields deserialize to the inert plan.
        let empty: FleetFaultPlan = serde_json::from_str("{}").unwrap();
        assert!(empty.is_inert());
    }
}

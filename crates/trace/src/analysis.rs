//! Deeper workload analysis: update-reuse distances, inter-arrival
//! statistics, and working-set growth.
//!
//! These are the quantities that determine how the paper's mechanisms behave:
//! the update-reuse distance of an address decides whether its next version
//! still finds free subpages in its page (intra-page update) or arrives after
//! the page filled or was collected (upgrade / re-entry), and arrival
//! burstiness decides how often the SLC pool drains into the MLC bypass.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::request::IoRequest;

/// Histogram over power-of-two buckets (`bucket b` counts values with
/// `floor(log2(v)) == b`; zero goes to bucket 0).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Log2Histogram {
    buckets: Vec<u64>,
    count: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: vec![0; 64],
            count: 0,
        }
    }
}

impl Log2Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, v: u64) {
        let b = if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        };
        self.buckets[b.min(63)] += 1;
        self.count += 1;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Approximate quantile (0–1): geometric midpoint of the covering bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q));
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return (1u64 << b) + (1u64 << b) / 2;
            }
        }
        1 << 63
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| (1u64 << b, n))
            .collect()
    }
}

/// Workload analysis results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceAnalysis {
    /// Distance (in intervening *write requests*) between successive writes
    /// to the same start address. Small distances are what intra-page update
    /// exploits.
    pub update_reuse_distance: Log2Histogram,
    /// Inter-arrival gaps in nanoseconds.
    pub interarrival_ns: Log2Histogram,
    /// Coefficient of variation of inter-arrival gaps (1.0 = Poisson;
    /// higher = burstier).
    pub interarrival_cov: f64,
    /// Distinct write start addresses after each ~1% of the trace
    /// (working-set growth curve, 100 samples).
    pub working_set_curve: Vec<u64>,
    /// Fraction of write requests that are re-writes of a seen address.
    pub rewrite_fraction: f64,
}

impl TraceAnalysis {
    /// Analyzes a request stream (assumed sorted by arrival time).
    pub fn compute(requests: &[IoRequest]) -> Self {
        let mut update_reuse_distance = Log2Histogram::new();
        let mut interarrival_ns = Log2Histogram::new();
        let mut last_write_index: BTreeMap<u64, u64> = BTreeMap::new();
        let mut writes_seen = 0u64;
        let mut rewrites = 0u64;
        let mut working_set_curve = Vec::with_capacity(100);

        let mut gap_sum = 0.0f64;
        let mut gap_sq_sum = 0.0f64;
        let mut gap_count = 0u64;
        let mut last_ts = None::<u64>;

        let step = (requests.len() / 100).max(1);
        for (i, r) in requests.iter().enumerate() {
            if let Some(prev) = last_ts {
                let gap = r.timestamp_ns.saturating_sub(prev);
                interarrival_ns.record(gap);
                gap_sum += gap as f64;
                gap_sq_sum += (gap as f64) * (gap as f64);
                gap_count += 1;
            }
            last_ts = Some(r.timestamp_ns);

            if r.op.is_write() {
                let key = r.first_lsn();
                if let Some(&prev_idx) = last_write_index.get(&key) {
                    update_reuse_distance.record(writes_seen - prev_idx);
                    rewrites += 1;
                }
                last_write_index.insert(key, writes_seen);
                writes_seen += 1;
            }
            if (i + 1) % step == 0 && working_set_curve.len() < 100 {
                working_set_curve.push(last_write_index.len() as u64);
            }
        }

        let interarrival_cov = if gap_count > 1 {
            let mean = gap_sum / gap_count as f64;
            let var = (gap_sq_sum / gap_count as f64 - mean * mean).max(0.0);
            if mean > 0.0 {
                var.sqrt() / mean
            } else {
                0.0
            }
        } else {
            0.0
        };

        TraceAnalysis {
            update_reuse_distance,
            interarrival_ns,
            interarrival_cov,
            working_set_curve,
            rewrite_fraction: if writes_seen == 0 {
                0.0
            } else {
                rewrites as f64 / writes_seen as f64
            },
        }
    }

    /// Final write working-set size (distinct start addresses).
    pub fn final_working_set(&self) -> u64 {
        self.working_set_curve.last().copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::OpKind;

    fn w(t: u64, offset: u64) -> IoRequest {
        IoRequest::new(t, OpKind::Write, offset, 4096)
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Log2Histogram::new();
        for v in [1u64, 1, 2, 3, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        let nz = h.nonzero_buckets();
        assert_eq!(nz[0], (1, 2)); // two ones
        assert_eq!(nz[1], (2, 2)); // 2 and 3
        assert!(h.quantile(0.5) <= 4);
        assert!(h.quantile(1.0) >= 1024);
        assert_eq!(Log2Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn reuse_distance_counts_intervening_writes() {
        // Writes: A, B, A (distance 2 between the two A's), B (distance 2).
        let reqs = vec![w(0, 0), w(1, 65536), w(2, 0), w(3, 65536)];
        let a = TraceAnalysis::compute(&reqs);
        assert_eq!(a.update_reuse_distance.count(), 2);
        assert!((a.rewrite_fraction - 0.5).abs() < 1e-12);
        assert_eq!(a.final_working_set(), 2);
    }

    #[test]
    fn poisson_arrivals_have_cov_near_one() {
        // Use the synthetic generator's exponential arrivals.
        let spec = crate::specs::paper_trace(crate::specs::PaperTrace::Ts0).with_requests(30_000);
        let reqs = crate::synth::TraceGenerator::new(spec).generate();
        let a = TraceAnalysis::compute(&reqs);
        assert!(
            (a.interarrival_cov - 1.0).abs() < 0.1,
            "exponential gaps must have CoV ≈ 1, got {}",
            a.interarrival_cov
        );
        assert!(
            a.rewrite_fraction > 0.3,
            "calibrated traces are update-heavy"
        );
        // Working-set curve is non-decreasing.
        assert!(a.working_set_curve.windows(2).all(|w| w[1] >= w[0]));
        assert_eq!(a.working_set_curve.len(), 100);
    }

    #[test]
    fn constant_gaps_have_zero_cov() {
        let reqs: Vec<IoRequest> = (0..100).map(|i| w(i * 1000, i * 65536)).collect();
        let a = TraceAnalysis::compute(&reqs);
        assert!(a.interarrival_cov < 1e-9);
        assert_eq!(a.update_reuse_distance.count(), 0);
        assert_eq!(a.rewrite_fraction, 0.0);
    }

    #[test]
    fn empty_trace_is_handled() {
        let a = TraceAnalysis::compute(&[]);
        assert_eq!(a.final_working_set(), 0);
        assert_eq!(a.interarrival_cov, 0.0);
        assert!(a.working_set_curve.is_empty());
    }
}

//! `exhaustive-match` — no wildcard arms on growth enums.
//!
//! The enums in [`GROWTH_ENUMS`] are the ones the ROADMAP keeps adding
//! variants to: a fourth `FtlScheme` (IPS, arXiv 2409.14360) means a new
//! `SchemeKind`; new background work means a new `RoundOrigin`; new fault
//! shapes mean new `FlashError`s; new replay events mean new `EventKind`
//! classes. A `_ =>` arm on any of these compiles cleanly when the variant
//! lands and silently swallows it — exactly the failure mode exhaustive
//! matching exists to prevent. The rule flags every *bare* `_` arm (a lone
//! `_` pattern, no guard) in a `match` whose other arm patterns name a
//! growth-enum variant. Guarded wildcards (`x if cond =>`) and binding
//! patterns (`other =>`) are left alone: they express intent, and rustc
//! still forces totality around them.

use crate::lexer::{TokKind, Token};
use crate::ttree::TokenTreeIndex;
use crate::{FileCtx, Finding};

/// Enums that grow with the roadmap; wildcard arms on these are denied.
pub const GROWTH_ENUMS: &[&str] = &[
    "SchemeKind",
    "RoundOrigin",
    "FlashError",
    "FtlError",
    "ReqStatus",
    "FlashOpKind",
    "EventKind",
];

/// One parsed match arm: its pattern token span and source line.
struct Arm {
    pat: (usize, usize),
    line: u32,
}

/// Runs the rule over one file.
pub fn run(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = ctx.tokens;
    for (open, close) in match_bodies(toks, ctx.tree) {
        // The `match` keyword index for test-masking: walk back from the
        // body; masking any token of the match masks the whole expression.
        if ctx.is_test.get(open).copied().unwrap_or(false) {
            continue;
        }
        let arms = parse_arms(toks, ctx.tree, open, close);
        let names: Vec<&str> = arms
            .iter()
            .flat_map(|a| growth_enums_in(toks, a.pat))
            .collect();
        if names.is_empty() {
            continue;
        }
        for arm in &arms {
            let (s, e) = arm.pat;
            // Bare wildcard: the pattern is exactly one `_` token.
            if e == s + 1 && toks[s].is_ident("_") {
                out.push(Finding {
                    rule: "exhaustive-match",
                    file: ctx.rel_path.to_string(),
                    line: arm.line,
                    message: format!(
                        "wildcard `_` arm in a match over growth enum `{}` — a new variant \
                         (e.g. the IPS scheme) would be silently swallowed; enumerate every \
                         variant or bind it with a named pattern",
                        names[0]
                    ),
                });
            }
        }
    }
}

/// `{`..`}` spans of every `match` body in the file. Also used by the engine
/// to classify indexing sites for `panic-reachability` (match-arm indexing is
/// a panic token everywhere; see [`crate::callgraph::scan_body`]).
pub(crate) fn match_bodies(toks: &[Token], tree: &TokenTreeIndex) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("match") || (i > 0 && toks[i - 1].is_punct(".")) {
            continue;
        }
        // First `{` at group depth 0 after the scrutinee opens the body
        // (struct literals are not allowed in scrutinee position).
        let mut j = i + 1;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct("(") || t.is_punct("[") {
                match tree.close_of(j) {
                    Some(c) => {
                        j = c + 1;
                        continue;
                    }
                    None => return out,
                }
            }
            if t.is_punct("{") {
                if let Some(close) = tree.close_of(j) {
                    out.push((j, close));
                }
                break;
            }
            j += 1;
        }
    }
    out
}

/// Splits a match body into arms: pattern spans end at the arm's `=>` (the
/// guard, if any, is part of the span we *search* but the bare-`_` check
/// looks at the span before any `if`).
fn parse_arms(toks: &[Token], tree: &TokenTreeIndex, open: usize, close: usize) -> Vec<Arm> {
    let mut arms = Vec::new();
    let mut i = open + 1;
    while i < close {
        let pat_start = i;
        let line = toks[i].line;
        // Scan to `=>` at this depth.
        let mut j = i;
        let mut guard_at = None;
        while j < close {
            let t = &toks[j];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                match tree.close_of(j) {
                    Some(c) => {
                        j = c + 1;
                        continue;
                    }
                    None => return arms,
                }
            }
            if t.is_ident("if") && guard_at.is_none() {
                guard_at = Some(j);
            }
            if t.is_punct("=>") {
                break;
            }
            j += 1;
        }
        if j >= close {
            break;
        }
        let pat_end = guard_at.unwrap_or(j);
        arms.push(Arm {
            pat: (pat_start, pat_end),
            line,
        });
        // Skip the arm body: a `{...}` group, or tokens to the depth-0 `,`.
        let mut k = j + 1;
        if k < close && toks[k].is_punct("{") {
            match tree.close_of(k) {
                Some(c) => k = c + 1,
                None => return arms,
            }
            if k < close && toks[k].is_punct(",") {
                k += 1;
            }
        } else {
            while k < close {
                let t = &toks[k];
                if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                    match tree.close_of(k) {
                        Some(c) => {
                            k = c + 1;
                            continue;
                        }
                        None => return arms,
                    }
                }
                if t.is_punct(",") {
                    k += 1;
                    break;
                }
                k += 1;
            }
        }
        i = k;
    }
    arms
}

/// Growth-enum names referenced as `Enum::Variant` inside a pattern span.
fn growth_enums_in(toks: &[Token], (s, e): (usize, usize)) -> Vec<&'static str> {
    let mut found = Vec::new();
    for i in s..e.min(toks.len()) {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        if let Some(&hit) = GROWTH_ENUMS.iter().find(|&&g| toks[i].is_ident(g)) {
            if toks.get(i + 1).is_some_and(|t| t.is_punct("::")) {
                found.push(hit);
            }
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use crate::lint_str;

    #[test]
    fn wildcard_on_growth_enum_fires() {
        let src = "fn f(k: SchemeKind) -> u8 { match k { SchemeKind::Baseline => 0, _ => 1 } }";
        let (findings, _) = lint_str("core", "crates/core/src/x.rs", false, src);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert_eq!(findings[0].rule, "exhaustive-match");
    }

    #[test]
    fn named_binding_and_guard_are_fine() {
        let src = "fn f(k: SchemeKind) -> u8 { match k { SchemeKind::Baseline => 0, k if k == SchemeKind::Mga => 1, other => 2 } }";
        let (findings, _) = lint_str("core", "crates/core/src/x.rs", false, src);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn non_growth_matches_ignored() {
        let src = "fn f(s: &str) -> u8 { match s { \"a\" => 0, _ => 1 } }";
        let (findings, _) = lint_str("core", "crates/core/src/x.rs", false, src);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn enum_in_arm_body_does_not_scope_the_match() {
        // The growth enum appears only in an arm *body*, not a pattern —
        // the match itself is over a bool and may use `_`.
        let src = "fn f(b: bool) -> SchemeKind { match b { true => SchemeKind::Ipu, _ => SchemeKind::Mga } }";
        let (findings, _) = lint_str("core", "crates/core/src/x.rs", false, src);
        assert!(findings.is_empty(), "{findings:#?}");
    }
}

//! Minimal dependency-free argument parsing for the `ipu-sim` binary.
//!
//! Grammar: `ipu-sim <command> [positional...] [--flag value | --switch]...`.
//! Flags take a value, switches stand alone; both may appear anywhere after
//! the command. Unknown names are errors so typos fail loudly instead of
//! silently running a multi-minute default sweep.

use std::collections::{HashMap, HashSet};

/// Parsed command line: a command word, positionals, `--key value` flags and
/// value-less `--switch`es.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    pub command: String,
    pub positionals: Vec<String>,
    flags: HashMap<String, String>,
    switches: HashSet<String>,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

impl ParsedArgs {
    /// Parses `args` (excluding the program name) against the allowed flag
    /// names for the command. Switch-free convenience over
    /// [`ParsedArgs::parse_with_switches`].
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn parse(
        args: impl IntoIterator<Item = String>,
        allowed_flags: &[&str],
    ) -> Result<ParsedArgs, ArgError> {
        Self::parse_with_switches(args, allowed_flags, &[])
    }

    /// [`ParsedArgs::parse`] with additional value-less switches (e.g.
    /// `--cache`): a name in `allowed_switches` consumes no value.
    pub fn parse_with_switches(
        args: impl IntoIterator<Item = String>,
        allowed_flags: &[&str],
        allowed_switches: &[&str],
    ) -> Result<ParsedArgs, ArgError> {
        let mut it = args.into_iter();
        let command = it
            .next()
            .ok_or_else(|| ArgError("missing command".into()))?;
        let mut positionals = Vec::new();
        let mut flags = HashMap::new();
        let mut switches = HashSet::new();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if allowed_switches.contains(&name) {
                    if !switches.insert(name.to_string()) {
                        return Err(ArgError(format!("switch --{name} given twice")));
                    }
                    continue;
                }
                if !allowed_flags.contains(&name) {
                    return Err(ArgError(format!(
                        "unknown flag --{name} (allowed: {})",
                        allowed_flags
                            .iter()
                            .chain(allowed_switches)
                            .map(|f| format!("--{f}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )));
                }
                let value = it
                    .next()
                    .ok_or_else(|| ArgError(format!("flag --{name} needs a value")))?;
                if flags.insert(name.to_string(), value).is_some() {
                    return Err(ArgError(format!("flag --{name} given twice")));
                }
            } else {
                positionals.push(a);
            }
        }
        Ok(ParsedArgs {
            command,
            positionals,
            flags,
            switches,
        })
    }

    /// String flag value.
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    /// Whether a value-less switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.contains(name)
    }

    /// Typed flag value with a default; parse failures are errors.
    pub fn flag_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgError(format!("cannot parse --{name} value `{raw}`"))),
        }
    }

    /// Comma-separated list flag (`--traces ts0,usr0`).
    pub fn flag_list(&self, name: &str) -> Option<Vec<&str>> {
        self.flags
            .get(name)
            .map(|v| v.split(',').filter(|s| !s.is_empty()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> impl Iterator<Item = String> + '_ {
        s.split_whitespace().map(str::to_string)
    }

    #[test]
    fn parses_command_positionals_and_flags() {
        let p = ParsedArgs::parse(
            argv("replay trace.csv --scheme ipu --scale 0.5"),
            &["scheme", "scale"],
        )
        .unwrap();
        assert_eq!(p.command, "replay");
        assert_eq!(p.positionals, vec!["trace.csv"]);
        assert_eq!(p.flag("scheme"), Some("ipu"));
        assert_eq!(p.flag_parsed("scale", 1.0).unwrap(), 0.5);
    }

    #[test]
    fn defaults_apply_when_flag_absent() {
        let p = ParsedArgs::parse(argv("tables"), &["scale"]).unwrap();
        assert_eq!(p.flag_parsed("scale", 0.1).unwrap(), 0.1);
        assert!(p.flag("scale").is_none());
    }

    #[test]
    fn rejects_unknown_and_duplicate_flags() {
        assert!(ParsedArgs::parse(argv("x --bogus 1"), &["scale"]).is_err());
        assert!(ParsedArgs::parse(argv("x --scale 1 --scale 2"), &["scale"]).is_err());
        assert!(ParsedArgs::parse(argv("x --scale"), &["scale"]).is_err());
        assert!(ParsedArgs::parse(std::iter::empty(), &[]).is_err());
    }

    #[test]
    fn list_flags_split_on_commas() {
        let p = ParsedArgs::parse(argv("figure 5 --traces ts0,usr0"), &["traces"]).unwrap();
        assert_eq!(p.flag_list("traces"), Some(vec!["ts0", "usr0"]));
        assert_eq!(p.positionals, vec!["5"]);
    }

    #[test]
    fn bad_typed_values_error() {
        let p = ParsedArgs::parse(argv("x --scale pony"), &["scale"]).unwrap();
        assert!(p.flag_parsed("scale", 1.0f64).is_err());
    }

    #[test]
    fn switches_take_no_value() {
        let p = ParsedArgs::parse_with_switches(
            argv("figure 5 --cache --scale 0.1"),
            &["scale"],
            &["cache", "no-cache"],
        )
        .unwrap();
        assert!(p.switch("cache"));
        assert!(!p.switch("no-cache"));
        assert_eq!(p.flag_parsed("scale", 1.0).unwrap(), 0.1);
        assert_eq!(p.positionals, vec!["5"]);
    }

    #[test]
    fn duplicate_and_unknown_switches_error() {
        assert!(
            ParsedArgs::parse_with_switches(argv("x --cache --cache"), &[], &["cache"]).is_err()
        );
        assert!(ParsedArgs::parse_with_switches(argv("x --cache"), &["scale"], &[]).is_err());
    }
}

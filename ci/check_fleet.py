#!/usr/bin/env python3
"""Fleet-smoke gate: assert the merged fleet reports are self-consistent.

Usage: check_fleet.py <fleet.json>

The input is the ExperimentRecord written by `ipu-sim fleet --save
fleet.json`, in either mode (capacity search or fixed tenant count). For
every merged FleetReport the gate checks the aggregation invariants the
fleet layer promises:

* per-device completed ops sum exactly to the fleet total;
* the pooled fleet p99 is no better than the median busy-device p99 —
  merging can only pool tails together, never hide them;
* hot-shard shares are fractions of the fleet total and the skew is
  max/mean of the per-device loads.

Capacity-search results are additionally checked for internal consistency:
every probe's verdict matches its latency against the SLO, `max_tenants`
is the largest passing probe, and the at-capacity report ran at exactly
that tenant count.
"""

import json
import sys


def check_report(r: dict) -> None:
    name = (r["trace"], r["scheme"], r["policy"])
    ops = [d["ops"] for d in r["per_device"]]
    assert len(ops) == r["devices"], name
    assert sum(ops) == r["total_ops"], (name, sum(ops), r["total_ops"])

    busy_p99 = sorted(d["p99_ns"] for d in r["per_device"] if d["ops"] > 0)
    if busy_p99:
        # Lower median: pooling tails can only raise the aggregate past the
        # typical device, never below it.
        median = busy_p99[(len(busy_p99) - 1) // 2]
        assert r["p99_ns"] >= median, (name, r["p99_ns"], median)

    total = sum(ops)
    for h in r["load"]["hot_shards"]:
        assert h["ops"] == ops[h["device"]], name
        assert abs(h["share"] - h["ops"] / total) < 1e-9, name
    if total > 0:
        mean = total / len(ops)
        assert abs(r["load"]["skew"] - max(ops) / mean) < 1e-9, name


def check_capacity(c: dict) -> None:
    name = (c["trace"], c["scheme"])
    assert c["probes"], name
    passing = [p["tenants"] for p in c["probes"] if p["met_slo"]]
    for p in c["probes"]:
        assert p["met_slo"] == (p["p99_ns"] < c["slo_p99_ns"]), (name, p)
        assert 1 <= p["tenants"] <= c["tenant_cap"], (name, p)
    assert c["max_tenants"] == (max(passing) if passing else 0), name
    if c["max_tenants"] > 0:
        at = c["at_capacity"]
        assert at is not None, name
        assert at["tenants"] == c["max_tenants"], name
        check_report(at)
    else:
        assert c["at_capacity"] is None, name


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        record = json.load(f)

    run = record["result"]
    caps = run["capacity"]
    fixed = run["reports"]
    assert caps or fixed, "fleet run produced no reports"
    for c in caps:
        check_capacity(c)
    for r in fixed:
        check_report(r)
    if caps:
        # A search where no scheme serves a single tenant means the SLO (or
        # the search itself) degenerated — the smoke would be vacuous.
        assert any(c["max_tenants"] > 0 for c in caps), (
            "every capacity search came back zero"
        )
    total_probes = sum(len(c["probes"]) for c in caps)
    print(
        f"fleet OK: {len(caps)} capacity searches ({total_probes} probes), "
        f"{len(fixed)} fixed-size reports, {run['devices']} devices, "
        f"{run['policy']} routing — ops conserved, tails pooled"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

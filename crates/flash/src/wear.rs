//! Wear accounting across the device.
//!
//! Tracks erase counts per block and summarizes endurance consumption for the
//! paper's Figure 10 (erase counts in SLC-mode vs MLC blocks) and the static
//! wear-leveling policy in `ipu-ftl`. The paper notes SLC-mode blocks endure
//! roughly 10× the P/E cycles of MLC blocks (refs. [8, 9]), which is captured
//! by [`WearTracker::endurance_consumed`].

use serde::{Deserialize, Serialize};

use crate::mode::CellMode;

/// Relative endurance of SLC-mode vs MLC-mode erases (paper §4.3.2: 10:1).
pub const SLC_TO_MLC_ENDURANCE_RATIO: f64 = 10.0;

/// Per-device wear statistics, indexed by dense block index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WearTracker {
    /// Erases performed while each block was in SLC-mode.
    slc_erases: Vec<u32>,
    /// Erases performed while each block was in MLC-mode.
    mlc_erases: Vec<u32>,
    /// Baseline P/E pre-aging applied to every block (paper §4.5).
    initial_pe: u32,
}

impl WearTracker {
    /// New tracker for `blocks` blocks, each pre-aged by `initial_pe` cycles.
    pub fn new(blocks: u64, initial_pe: u32) -> Self {
        WearTracker {
            slc_erases: vec![0; blocks as usize],
            mlc_erases: vec![0; blocks as usize],
            initial_pe,
        }
    }

    /// Records an erase of `block_idx` performed in `mode`. Out-of-range
    /// indices are ignored (callers derive them from device geometry).
    pub fn record_erase(&mut self, block_idx: u64, mode: CellMode) {
        let tab = match mode {
            CellMode::Slc => &mut self.slc_erases,
            CellMode::Mlc => &mut self.mlc_erases,
        };
        debug_assert!(
            (block_idx as usize) < tab.len(),
            "block {block_idx} out of range"
        );
        if let Some(n) = tab.get_mut(block_idx as usize) {
            *n += 1;
        }
    }

    /// Effective P/E cycle count of a block, including pre-aging.
    ///
    /// Drives the RBER model: a block's error rate depends on its total wear
    /// regardless of which mode each erase ran in.
    pub fn pe_cycles(&self, block_idx: u64) -> u32 {
        self.initial_pe + self.slc_erases[block_idx as usize] + self.mlc_erases[block_idx as usize]
    }

    /// Total erases recorded in each mode, across the whole device.
    pub fn totals(&self) -> WearTotals {
        WearTotals {
            slc_erases: self.slc_erases.iter().map(|&e| e as u64).sum(),
            mlc_erases: self.mlc_erases.iter().map(|&e| e as u64).sum(),
        }
    }

    /// Erases of one block, split by mode, excluding pre-aging.
    pub fn block_erases(&self, block_idx: u64) -> (u32, u32) {
        (
            self.slc_erases[block_idx as usize],
            self.mlc_erases[block_idx as usize],
        )
    }

    /// Endurance consumed by a block, in MLC-erase-equivalents.
    ///
    /// SLC-mode erases are `SLC_TO_MLC_ENDURANCE_RATIO` times cheaper, so the
    /// paper's claim that shifting erases into the SLC-mode cache preserves
    /// overall lifetime shows up directly in this number.
    pub fn endurance_consumed(&self, block_idx: u64) -> f64 {
        self.mlc_erases[block_idx as usize] as f64
            + self.slc_erases[block_idx as usize] as f64 / SLC_TO_MLC_ENDURANCE_RATIO
    }

    /// Device-wide endurance consumption in MLC-erase-equivalents.
    pub fn total_endurance_consumed(&self) -> f64 {
        (0..self.slc_erases.len() as u64)
            .map(|i| self.endurance_consumed(i))
            .sum()
    }

    /// Number of tracked blocks.
    pub fn block_count(&self) -> u64 {
        self.slc_erases.len() as u64
    }
}

/// Device-wide erase totals by mode (Figure 10's two panels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WearTotals {
    pub slc_erases: u64,
    pub mlc_erases: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_cycles_include_pre_aging() {
        let mut w = WearTracker::new(4, 4000);
        assert_eq!(w.pe_cycles(0), 4000);
        w.record_erase(0, CellMode::Slc);
        w.record_erase(0, CellMode::Mlc);
        assert_eq!(w.pe_cycles(0), 4002);
        assert_eq!(w.pe_cycles(1), 4000);
    }

    #[test]
    fn totals_split_by_mode() {
        let mut w = WearTracker::new(4, 0);
        for _ in 0..5 {
            w.record_erase(1, CellMode::Slc);
        }
        w.record_erase(2, CellMode::Mlc);
        let t = w.totals();
        assert_eq!(t.slc_erases, 5);
        assert_eq!(t.mlc_erases, 1);
        assert_eq!(w.block_erases(1), (5, 0));
        assert_eq!(w.block_erases(2), (0, 1));
    }

    #[test]
    fn slc_erases_cost_a_tenth_of_endurance() {
        let mut w = WearTracker::new(2, 0);
        for _ in 0..10 {
            w.record_erase(0, CellMode::Slc);
        }
        w.record_erase(1, CellMode::Mlc);
        assert!((w.endurance_consumed(0) - 1.0).abs() < 1e-12);
        assert!((w.endurance_consumed(1) - 1.0).abs() < 1e-12);
        assert!((w.total_endurance_consumed() - 2.0).abs() < 1e-12);
    }
}

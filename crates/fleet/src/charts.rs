//! Dependency-free SVG figures for fleet results: the capacity headline as
//! grouped bars and per-device load as heat strips, rendered from a saved
//! [`FleetRunResult`] with the same `ipu_core::svg` primitives the paper
//! figures use.

use std::io;
use std::path::{Path, PathBuf};

use crate::report::{FleetReport, FleetRunResult};
use ipu_core::{GroupedBars, HeatStrip};

/// First-appearance-order deduplication (the capacity results are already
/// ordered trace-major, scheme-minor by the runner).
fn unique(values: impl Iterator<Item = String>) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for v in values {
        if !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

/// Writes the fleet figures under `dir` and returns the written paths:
///
/// * `fleet_capacity.svg` — tenants served at the p99 SLO, one group per
///   trace, one bar per scheme (capacity-search runs only);
/// * `fleet_degradation.svg` — healthy vs degraded capacity per scheme
///   (only when a degraded-mode search ran);
/// * `fleet_load_<trace>.svg` — per-device ops heat strip, one row per
///   scheme, from the at-capacity reports (or the fixed-size reports).
pub fn write_fleet_charts(dir: &Path, run: &FleetRunResult) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();

    if !run.capacity.is_empty() {
        let groups = unique(run.capacity.iter().map(|c| c.trace.clone()));
        let series = unique(run.capacity.iter().map(|c| c.scheme.clone()));
        let slo_ms = run.slo_p99_ns as f64 / 1e6;
        let mut bars = GroupedBars::new(
            &format!(
                "Tenants served at p99 < {slo_ms:.2} ms ({} devices, {} routing)",
                run.devices, run.policy
            ),
            "tenants",
            &groups,
            &series,
        );
        for c in &run.capacity {
            let g = groups.iter().position(|t| *t == c.trace).expect("grouped");
            let s = series.iter().position(|x| *x == c.scheme).expect("grouped");
            bars.set(g, s, c.max_tenants as f64);
        }
        let path = dir.join("fleet_capacity.svg");
        std::fs::write(&path, bars.render())?;
        written.push(path);
    }

    // Graceful-degradation pairs: healthy and k-faulty capacity side by
    // side, two bars per scheme per trace group.
    if !run.degraded.is_empty() && !run.capacity.is_empty() {
        let groups = unique(run.capacity.iter().map(|c| c.trace.clone()));
        let schemes = unique(run.capacity.iter().map(|c| c.scheme.clone()));
        let mut series: Vec<String> = Vec::new();
        for s in &schemes {
            series.push(format!("{s} healthy"));
            series.push(format!("{s} k={}", run.faulty_devices));
        }
        let mut bars = GroupedBars::new(
            &format!(
                "Graceful degradation: tenants at SLO, healthy vs {} faulty ({})",
                run.faulty_devices, run.replication
            ),
            "tenants",
            &groups,
            &series,
        );
        for (offset, results) in [(0usize, &run.capacity), (1usize, &run.degraded)] {
            for c in results.iter() {
                let Some(g) = groups.iter().position(|t| *t == c.trace) else {
                    continue;
                };
                let Some(s) = schemes.iter().position(|x| *x == c.scheme) else {
                    continue;
                };
                bars.set(g, 2 * s + offset, c.max_tenants as f64);
            }
        }
        let path = dir.join("fleet_degradation.svg");
        std::fs::write(&path, bars.render())?;
        written.push(path);
    }

    // One heat strip per trace: per-device completed ops, row per scheme.
    let reports: Vec<&FleetReport> = run
        .capacity
        .iter()
        .filter_map(|c| c.at_capacity.as_ref())
        .chain(run.reports.iter())
        .collect();
    let mut by_trace: Vec<(String, Vec<&FleetReport>)> = Vec::new();
    for r in reports {
        match by_trace.iter_mut().find(|(t, _)| *t == r.trace) {
            Some((_, rs)) => rs.push(r),
            None => by_trace.push((r.trace.clone(), vec![r])),
        }
    }
    for (trace, reports) in by_trace {
        let devices = reports[0].devices;
        let mut strip = HeatStrip::new(
            &format!("{trace}: per-device load (completed ops)"),
            devices,
        );
        let mut rows = 0;
        for r in &reports {
            if r.devices != devices {
                continue; // mixed fleet sizes cannot share a strip
            }
            let ops: Vec<f64> = r.per_device.iter().map(|d| d.ops as f64).collect();
            strip.row(&r.scheme, &ops);
            rows += 1;
        }
        if rows == 0 {
            continue;
        }
        let path = dir.join(format!("fleet_load_{trace}.svg"));
        std::fs::write(&path, strip.render())?;
        written.push(path);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{CapacityProbe, CapacityResult};
    use crate::router::ShardPolicy;

    /// A zero fleet report with `devices` summaries, load painted on.
    fn fake_report(scheme: &str, trace: &str, ops: &[u64]) -> FleetReport {
        let empty: Vec<Option<ipu_sim::ClosedLoopReport>> = (0..ops.len()).map(|_| None).collect();
        let mut r = FleetReport::merge(scheme, trace, ShardPolicy::Hash, 8, 4, &empty);
        for (d, &n) in ops.iter().enumerate() {
            r.per_device[d].ops = n;
        }
        r
    }

    fn fake_capacity(scheme: &str, trace: &str, max_tenants: u64) -> CapacityResult {
        CapacityResult {
            scheme: scheme.into(),
            trace: trace.into(),
            policy: "hash".into(),
            slo_p99_ns: 1_000_000,
            tenant_cap: 1024,
            max_tenants,
            probes: vec![CapacityProbe {
                tenants: max_tenants,
                p99_ns: 900_000,
                met_slo: true,
            }],
            at_capacity: Some(fake_report(scheme, trace, &[10, 30, 20, 5])),
        }
    }

    #[test]
    fn capacity_run_renders_bars_and_one_strip_per_trace() {
        let run = FleetRunResult {
            devices: 4,
            policy: "hash".into(),
            queue_depth: 4,
            slo_p99_ns: 1_000_000,
            capacity: vec![
                fake_capacity("base", "ts0", 40),
                fake_capacity("ipu", "ts0", 60),
                fake_capacity("base", "usr0", 30),
                fake_capacity("ipu", "usr0", 45),
            ],
            ..FleetRunResult::default()
        };
        let dir = std::env::temp_dir().join(format!("ipu-fleet-charts-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let written = write_fleet_charts(&dir, &run).unwrap();
        let names: Vec<String> = written
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            names,
            vec![
                "fleet_capacity.svg",
                "fleet_load_ts0.svg",
                "fleet_load_usr0.svg"
            ]
        );
        for p in &written {
            let body = std::fs::read_to_string(p).unwrap();
            assert!(body.starts_with("<svg"), "{p:?} is not SVG");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn degraded_run_adds_the_degradation_chart() {
        let mut degraded = vec![
            fake_capacity("base", "ts0", 20),
            fake_capacity("ipu", "ts0", 45),
        ];
        for d in &mut degraded {
            d.at_capacity = None; // degraded strips ride on the healthy ones
        }
        let run = FleetRunResult {
            devices: 4,
            policy: "hash".into(),
            queue_depth: 4,
            slo_p99_ns: 1_000_000,
            capacity: vec![
                fake_capacity("base", "ts0", 40),
                fake_capacity("ipu", "ts0", 60),
            ],
            replication: "mirror-pair".into(),
            fault_plan: "failstop:1@0.50".into(),
            faulty_devices: 1,
            degraded,
            ..FleetRunResult::default()
        };
        let dir = std::env::temp_dir().join(format!("ipu-fleet-charts-dg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let written = write_fleet_charts(&dir, &run).unwrap();
        let names: Vec<String> = written
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            names,
            vec![
                "fleet_capacity.svg",
                "fleet_degradation.svg",
                "fleet_load_ts0.svg"
            ]
        );
        let body = std::fs::read_to_string(&written[1]).unwrap();
        assert!(body.contains("healthy") && body.contains("k=1"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fixed_size_run_renders_strips_without_bars() {
        let run = FleetRunResult {
            devices: 3,
            policy: "range".into(),
            queue_depth: 2,
            slo_p99_ns: 1_000_000,
            reports: vec![
                fake_report("base", "ts0", &[5, 5, 5]),
                fake_report("ipu", "ts0", &[4, 6, 5]),
            ],
            ..FleetRunResult::default()
        };
        let dir = std::env::temp_dir().join(format!("ipu-fleet-charts-fx-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let written = write_fleet_charts(&dir, &run).unwrap();
        assert_eq!(written.len(), 1);
        assert!(written[0].ends_with("fleet_load_ts0.svg"));
        let body = std::fs::read_to_string(&written[0]).unwrap();
        // One row per scheme → both labels present.
        assert!(body.contains("base") && body.contains("ipu"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! `cargo bench -p ipu-bench --bench table3_trace_specs`
//!
//! Regenerates the paper's Table 3 (per-trace request count, write ratio,
//! average write size and hot-write ratio) from the calibrated synthetic
//! traces, next to the published values.

fn main() {
    let cfg = ipu_bench::bench_config();
    let rows = ipu_core::run_trace_tables(&cfg);
    println!("{}", ipu_core::report::render_table3(&rows));
}

//! Chip-level resource scheduling with host-priority background GC.
//!
//! NAND operations occupy a chip (target) exclusively; the channel transfer is
//! folded into each operation's latency (see `ipu-flash`'s timing model).
//!
//! Host operations are serviced FIFO per chip. GC operations are *background*
//! work: they run in the chip's idle gaps and host operations never queue
//! behind GC work that has not started yet (write-preferred scheduling with
//! program/erase suspension, as modern controllers and SSDsim's GC preemption
//! implement). A background operation that is already in flight when a host
//! operation arrives does delay it — individual NAND pulses are not
//! preemptible at arbitrary points.
//!
//! The FTL time-gates GC generation (one round in flight per region), which
//! bounds the background backlog; the backlog is also observable for
//! utilization accounting.

use std::collections::VecDeque;

use ipu_flash::Nanos;

/// Per-chip schedule: host-write horizon, read horizon and a deferred
/// background queue.
///
/// Reads are scheduled with *read priority*: modern NAND supports
/// program/erase suspension, so a read waits only behind earlier reads on the
/// same chip, never behind queued program/erase work. Read latency is thereby
/// service-dominated — which is what couples the paper's Figure 8 (error
/// rates → ECC time) to Figure 5's read latencies.
#[derive(Debug, Clone)]
pub struct ChipSchedule {
    /// Time each chip becomes free for the next host write/erase operation.
    busy_until: Vec<Nanos>,
    /// Time each chip's read channel becomes free.
    read_until: Vec<Nanos>,
    /// Deferred background operations per chip: `(enqueued_at, duration)`.
    background: Vec<VecDeque<(Nanos, Nanos)>>,
    /// Total background nanoseconds ever completed (for utilization stats).
    background_done: Nanos,
    /// Total host write/erase nanoseconds executed.
    host_busy: Nanos,
    /// Total host read nanoseconds executed.
    read_busy: Nanos,
}

impl ChipSchedule {
    /// A schedule for `chips` chips, all idle at time zero.
    pub fn new(chips: u32) -> Self {
        assert!(chips > 0, "a device needs at least one chip");
        ChipSchedule {
            busy_until: vec![0; chips as usize],
            read_until: vec![0; chips as usize],
            background: vec![VecDeque::new(); chips as usize],
            background_done: 0,
            host_busy: 0,
            read_busy: 0,
        }
    }

    /// Number of chips tracked.
    pub fn chips(&self) -> u32 {
        self.busy_until.len() as u32
    }

    /// Runs deferred background work that fits in the idle gap before `t`.
    ///
    /// Each queued operation starts at the later of its enqueue time and the
    /// chip becoming idle; once started it runs to completion even if that
    /// overruns `t` (in-flight pulses are not preempted).
    fn drain_background(&mut self, chip: u32, t: Nanos) {
        let c = chip as usize;
        while let Some(&(enq, dur)) = self.background[c].front() {
            let start = self.busy_until[c].max(enq);
            if start >= t {
                break;
            }
            self.busy_until[c] = start + dur;
            self.background_done += dur;
            self.background[c].pop_front();
        }
    }

    /// Schedules a *host* operation of `duration` on `chip`, starting no
    /// earlier than `earliest`. Returns `(start, end)`.
    pub fn schedule(&mut self, chip: u32, earliest: Nanos, duration: Nanos) -> (Nanos, Nanos) {
        self.drain_background(chip, earliest);
        let slot = &mut self.busy_until[chip as usize];
        let start = (*slot).max(earliest);
        let end = start + duration;
        *slot = end;
        self.host_busy += duration;
        (start, end)
    }

    /// Schedules a *host read* with read priority: it waits only behind
    /// earlier reads on the chip (program/erase suspension lets it preempt
    /// queued write and GC work). Returns `(start, end)`.
    pub fn schedule_read(&mut self, chip: u32, earliest: Nanos, duration: Nanos) -> (Nanos, Nanos) {
        let slot = &mut self.read_until[chip as usize];
        let start = (*slot).max(earliest);
        let end = start + duration;
        *slot = end;
        self.read_busy += duration;
        (start, end)
    }

    /// Enqueues a *background* (GC) operation of `duration` on `chip`,
    /// available to run from `earliest`. It executes lazily in idle gaps.
    pub fn schedule_background(&mut self, chip: u32, earliest: Nanos, duration: Nanos) {
        self.background[chip as usize].push_back((earliest, duration));
    }

    /// Time at which `chip` becomes idle for host work (ignoring deferred
    /// background operations).
    pub fn busy_until(&self, chip: u32) -> Nanos {
        self.busy_until[chip as usize]
    }

    /// Time at which `chip`'s read channel becomes free.
    pub fn read_until(&self, chip: u32) -> Nanos {
        self.read_until[chip as usize]
    }

    /// Outstanding background nanoseconds on `chip`.
    pub fn background_backlog(&self, chip: u32) -> Nanos {
        self.background[chip as usize].iter().map(|&(_, d)| d).sum()
    }

    /// Total background nanoseconds already executed.
    pub fn background_done(&self) -> Nanos {
        self.background_done
    }

    /// Total host write/erase nanoseconds executed.
    pub fn host_busy(&self) -> Nanos {
        self.host_busy
    }

    /// Total host read nanoseconds executed.
    pub fn read_busy(&self) -> Nanos {
        self.read_busy
    }

    /// Runs every deferred background operation to completion on all chips.
    ///
    /// The lazy drain in [`ChipSchedule::schedule`] only advances a chip when
    /// a later *host write/erase* arrives there, so a replay ending in a
    /// read-only (or idle) tail would report work still queued that a real
    /// drive finishes in its idle time. Replay engines call this once before
    /// building the report, so `background_done()` covers all GC issued and
    /// the backlog is empty at report time.
    pub fn finish(&mut self) {
        for c in 0..self.background.len() {
            while let Some((enq, dur)) = self.background[c].pop_front() {
                let start = self.busy_until[c].max(enq);
                self.busy_until[c] = start + dur;
                self.background_done += dur;
            }
        }
    }

    /// The latest horizon across all chips and both channels: host write/erase
    /// work, outstanding background work run serially after it, and the read
    /// channel.
    ///
    /// The background fold is *enqueue-aware*: a queued operation cannot start
    /// before its enqueue time, so an op enqueued far in the future bounds the
    /// horizon by `enq + duration`, not by `busy_until + backlog`. (Before
    /// this fix a future-enqueued op could report a horizon below its real
    /// finish time to any caller that samples before [`ChipSchedule::finish`].)
    pub fn horizon(&self) -> Nanos {
        (0..self.busy_until.len())
            .map(|c| {
                let mut h = self.busy_until[c];
                for &(enq, dur) in &self.background[c] {
                    h = h.max(enq) + dur;
                }
                h.max(self.read_until[c])
            })
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_chip_serializes() {
        let mut s = ChipSchedule::new(2);
        let (s1, e1) = s.schedule(0, 0, 100);
        let (s2, e2) = s.schedule(0, 0, 100);
        assert_eq!((s1, e1), (0, 100));
        assert_eq!((s2, e2), (100, 200));
    }

    #[test]
    fn different_chips_overlap() {
        let mut s = ChipSchedule::new(2);
        let (_, e1) = s.schedule(0, 0, 100);
        let (s2, e2) = s.schedule(1, 0, 100);
        assert_eq!(e1, 100);
        assert_eq!((s2, e2), (0, 100));
        assert_eq!(s.horizon(), 100);
    }

    #[test]
    fn earliest_bound_is_respected() {
        let mut s = ChipSchedule::new(1);
        let (start, end) = s.schedule(0, 500, 10);
        assert_eq!((start, end), (500, 510));
        let (start, end) = s.schedule(0, 10_000, 10);
        assert_eq!((start, end), (10_000, 10_010));
        assert_eq!(s.busy_until(0), 10_010);
    }

    #[test]
    fn background_runs_in_idle_gaps() {
        let mut s = ChipSchedule::new(1);
        s.schedule(0, 0, 100); // host op [0, 100)
        s.schedule_background(0, 100, 50); // GC available from t=100
                                           // A host op at t=500: the GC op ran in the idle gap [100, 150),
                                           // leaving the chip free — no queueing behind it.
        let (start, end) = s.schedule(0, 500, 10);
        assert_eq!((start, end), (500, 510));
        assert_eq!(s.background_backlog(0), 0);
        assert_eq!(s.background_done(), 50);
    }

    #[test]
    fn in_flight_background_delays_host() {
        let mut s = ChipSchedule::new(1);
        s.schedule_background(0, 0, 1_000); // starts at t=0 (chip idle)
                                            // Host op arriving at t=300 finds the GC pulse in flight → waits.
        let (start, end) = s.schedule(0, 300, 10);
        assert_eq!((start, end), (1_000, 1_010));
    }

    #[test]
    fn queued_background_does_not_block_host() {
        let mut s = ChipSchedule::new(1);
        s.schedule(0, 0, 1_000); // host busy [0, 1000)
        s.schedule_background(0, 0, 10_000); // cannot start before t=1000
                                             // A host op at t=500 jumps ahead of the *queued* background op.
        let (start, end) = s.schedule(0, 500, 10);
        assert_eq!((start, end), (1_000, 1_010));
        assert_eq!(s.background_backlog(0), 10_000);
        // Horizon accounts for the deferred work.
        assert_eq!(s.horizon(), 1_010 + 10_000);
    }

    #[test]
    fn background_respects_enqueue_time() {
        let mut s = ChipSchedule::new(1);
        s.schedule_background(0, 5_000, 100); // not available before t=5000
        let (start, _) = s.schedule(0, 1_000, 10);
        assert_eq!(
            start, 1_000,
            "background op from the future must not run early"
        );
        // At t=10_000 it has run.
        let (start, _) = s.schedule(0, 10_000, 10);
        assert_eq!(start, 10_000);
        assert_eq!(s.background_done(), 100);
    }

    #[test]
    #[should_panic(expected = "at least one chip")]
    fn zero_chips_rejected() {
        ChipSchedule::new(0);
    }

    #[test]
    fn horizon_covers_the_read_channel() {
        let mut s = ChipSchedule::new(2);
        s.schedule(0, 0, 100);
        // A late read on chip 1 extends past every write horizon.
        let (_, end) = s.schedule_read(1, 5_000, 250);
        assert_eq!(end, 5_250);
        assert_eq!(s.horizon(), 5_250, "read channel must bound the horizon");
    }

    #[test]
    fn horizon_is_enqueue_aware() {
        // Regression: a queued background op with `enq` far in the future
        // used to yield horizon = busy_until + backlog (110 here), below the
        // op's real finish time of 5_010.
        let mut s = ChipSchedule::new(1);
        s.schedule(0, 0, 100); // host busy [0, 100)
        s.schedule_background(0, 5_000, 10); // cannot start before t=5000
        assert_eq!(s.horizon(), 5_010);
        // The bound matches what finish() actually executes.
        s.finish();
        assert_eq!(s.busy_until(0), 5_010);
        assert_eq!(s.horizon(), 5_010);

        // Mixed queue: an already-startable op runs first, then the future
        // one waits for its enqueue time.
        let mut s = ChipSchedule::new(1);
        s.schedule(0, 0, 1_000);
        s.schedule_background(0, 0, 200); // runs [1000, 1200)
        s.schedule_background(0, 9_000, 50); // runs [9000, 9050)
        assert_eq!(s.horizon(), 9_050);
        s.finish();
        assert_eq!(s.busy_until(0), 9_050);
    }

    #[test]
    fn finish_drains_deferred_background_work() {
        let mut s = ChipSchedule::new(2);
        s.schedule(0, 0, 1_000); // host busy [0, 1000)
        s.schedule_background(0, 0, 10_000); // queued behind the host op
        s.schedule_background(1, 7_000, 30); // not available until t=7000
        assert_eq!(s.background_done(), 0);
        s.finish();
        assert_eq!(s.background_backlog(0), 0);
        assert_eq!(s.background_backlog(1), 0);
        assert_eq!(s.background_done(), 10_030);
        // Chip 0 ran its GC right after the host op; chip 1 waited for the
        // enqueue time.
        assert_eq!(s.busy_until(0), 11_000);
        assert_eq!(s.busy_until(1), 7_030);
        assert_eq!(s.horizon(), 11_000);
        // Idempotent.
        s.finish();
        assert_eq!(s.background_done(), 10_030);
    }
}

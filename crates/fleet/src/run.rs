//! Driving a fleet: route tenants, replay every device in parallel, merge.
//!
//! Each device is an independent closed-loop world — its own FTL, chip
//! schedule and host queues — so devices simulate concurrently with
//! [`parallel_map`] and the per-device [`ClosedLoopReport`]s merge into one
//! [`FleetReport`]. A fleet run is a pure function of
//! `(ExperimentConfig, scheme, trace spec, FleetSpec)`, which is exactly the
//! key [`run_fleet_cached`] stores it under.

use crate::report::FleetReport;
use crate::router::{route, synthesize_tenants, ShardPolicy};
use ipu_core::{parallel_map, ExperimentConfig, ReplayCache, TraceSet};
use ipu_ftl::SchemeKind;
use ipu_host::{ArbitrationPolicy, HostConfig, TenantSpec};
use ipu_obs::{span, Phase};
use ipu_sim::{replay_closed_loop, ClosedLoopReport, ReplayConfig};
use ipu_trace::{IoRequest, PaperTrace, SyntheticTraceSpec};
use serde::Serialize;

/// Shape of one fleet: how many devices serve how many tenants, and how.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    pub devices: usize,
    pub tenants: usize,
    pub policy: ShardPolicy,
    /// Per-tenant queue depth on each device.
    pub queue_depth: usize,
    pub arbitration: ArbitrationPolicy,
}

impl FleetSpec {
    /// Round-robin arbitration at queue depth 1 per tenant. Depth 1 keeps a
    /// tenant's service latency free of its own self-queueing, so fleet p99
    /// measures the *sharing* cost — deeper queues are an explicit choice
    /// via [`FleetSpec::with_queue_depth`].
    pub fn new(devices: usize, tenants: usize, policy: ShardPolicy) -> Self {
        assert!(devices >= 1, "need at least one device");
        assert!(tenants >= 1, "need at least one tenant");
        FleetSpec {
            devices,
            tenants,
            policy,
            queue_depth: 1,
            arbitration: ArbitrationPolicy::RoundRobin,
        }
    }

    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        assert!(queue_depth >= 1, "queue depth must be ≥ 1");
        self.queue_depth = queue_depth;
        self
    }

    pub fn with_arbitration(mut self, arbitration: ArbitrationPolicy) -> Self {
        self.arbitration = arbitration;
        self
    }
}

/// [`run_fleet`] returning the per-device closed-loop reports as well
/// (indexed by device id; `None` where no tenant was routed).
pub fn run_fleet_detailed(
    cfg: &ExperimentConfig,
    scheme: SchemeKind,
    trace_name: &str,
    base: &[IoRequest],
    spec: &FleetSpec,
) -> (FleetReport, Vec<Option<ClosedLoopReport>>) {
    let assignments = {
        let _span = span(Phase::HostArbitration);
        route(
            spec.policy,
            synthesize_tenants(base, spec.tenants),
            spec.devices,
        )
    };

    let replay_cfg = cfg.replay_config(scheme);
    let queue_depth = spec.queue_depth;
    let arbitration = spec.arbitration;
    let per_device = parallel_map(
        assignments,
        cfg.effective_threads(),
        |assignment| -> Option<ClosedLoopReport> {
            if assignment.tenant_ids.is_empty() {
                return None;
            }
            let tenants = assignment
                .tenant_ids
                .iter()
                .map(|t| TenantSpec::new(format!("t{t}")))
                .collect();
            let host = HostConfig::new(queue_depth, arbitration, tenants);
            Some(replay_closed_loop(
                &replay_cfg,
                &host,
                &assignment.workloads,
                trace_name,
            ))
        },
    );

    let report = {
        let _span = span(Phase::Report);
        FleetReport::merge(
            scheme.label(),
            trace_name,
            spec.policy,
            spec.tenants,
            spec.queue_depth,
            &per_device,
        )
    };
    (report, per_device)
}

/// Simulates the whole fleet and merges the per-device outcomes.
pub fn run_fleet(
    cfg: &ExperimentConfig,
    scheme: SchemeKind,
    trace_name: &str,
    base: &[IoRequest],
    spec: &FleetSpec,
) -> FleetReport {
    run_fleet_detailed(cfg, scheme, trace_name, base, spec).0
}

/// Everything a fleet run's outcome depends on, for content addressing.
/// Policy/arbitration travel as labels: stable spellings, stable key.
#[derive(Serialize)]
struct FleetCacheKey {
    replay: ReplayConfig,
    trace: SyntheticTraceSpec,
    devices: usize,
    tenants: usize,
    policy: String,
    queue_depth: usize,
    arbitration: String,
}

/// [`run_fleet`] through the replay cache: a warm re-run (same config,
/// scheme, trace spec and fleet shape) loads the merged report from disk
/// instead of re-simulating every device.
pub fn run_fleet_cached(
    cfg: &ExperimentConfig,
    scheme: SchemeKind,
    trace: PaperTrace,
    spec: &FleetSpec,
    traces: &TraceSet,
    cache: Option<&ReplayCache>,
) -> FleetReport {
    let trace_name = trace.to_string();
    let Some(cache) = cache else {
        return run_fleet(cfg, scheme, &trace_name, &traces.get(trace), spec);
    };
    let key = FleetCacheKey {
        replay: cfg.replay_config(scheme),
        trace: ipu_core::scaled_spec(cfg, trace),
        devices: spec.devices,
        tenants: spec.tenants,
        policy: spec.policy.label().to_string(),
        queue_depth: spec.queue_depth,
        arbitration: spec.arbitration.label().to_string(),
    };
    cache.get_or_compute("fleet", &key, || {
        run_fleet(cfg, scheme, &trace_name, &traces.get(trace), spec)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipu_trace::OpKind;

    fn base_workload(n: u64) -> Vec<IoRequest> {
        (0..n)
            .map(|i| {
                let op = if i % 4 == 3 {
                    OpKind::Read
                } else {
                    OpKind::Write
                };
                IoRequest::new(i * 2_000, op, (i % 64) * 65_536, 4096)
            })
            .collect()
    }

    fn tiny_cfg() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::scaled(0.002);
        cfg.threads = 2;
        cfg
    }

    #[test]
    fn fleet_ops_sum_to_routed_requests() {
        let cfg = tiny_cfg();
        let base = base_workload(120);
        for policy in ShardPolicy::all() {
            let spec = FleetSpec::new(4, 8, policy).with_queue_depth(4);
            let (report, per_device) =
                run_fleet_detailed(&cfg, SchemeKind::Ipu, "ts0", &base, &spec);
            assert_eq!(report.total_ops, 120, "{policy:?} lost requests");
            assert_eq!(
                report.per_device.iter().map(|d| d.ops).sum::<u64>(),
                report.total_ops
            );
            assert_eq!(per_device.len(), 4);
            assert_eq!(report.devices, 4);
            assert_eq!(report.tenants, 8);
            // Per-device summaries mirror the detailed reports.
            for (summary, detail) in report.per_device.iter().zip(&per_device) {
                match detail {
                    Some(d) => assert_eq!(summary.ops, d.host.total_completed()),
                    None => assert_eq!(summary.ops, 0),
                }
            }
        }
    }

    #[test]
    fn more_devices_than_tenants_leaves_devices_idle_not_broken() {
        let cfg = tiny_cfg();
        let base = base_workload(30);
        let spec = FleetSpec::new(8, 2, ShardPolicy::Range);
        let (report, per_device) =
            run_fleet_detailed(&cfg, SchemeKind::Baseline, "ts0", &base, &spec);
        assert_eq!(report.total_ops, 30);
        assert!(per_device.iter().filter(|d| d.is_none()).count() >= 6);
        assert_eq!(report.per_device.len(), 8);
    }

    #[test]
    fn cached_fleet_run_round_trips_bit_identical() {
        let mut cfg = tiny_cfg();
        cfg.traces = vec![PaperTrace::Ts0];
        cfg.scale = 0.002;
        let traces = TraceSet::generate(&cfg);
        let spec = FleetSpec::new(3, 5, ShardPolicy::Hash).with_queue_depth(2);
        let dir = std::env::temp_dir().join(format!("ipu-fleet-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ReplayCache::new(&dir);

        let cold = run_fleet_cached(
            &cfg,
            SchemeKind::Ipu,
            PaperTrace::Ts0,
            &spec,
            &traces,
            Some(&cache),
        );
        assert_eq!(cache.stats().misses, 1);
        let warm = run_fleet_cached(
            &cfg,
            SchemeKind::Ipu,
            PaperTrace::Ts0,
            &spec,
            &traces,
            Some(&cache),
        );
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(
            serde_json::to_string(&cold).unwrap(),
            serde_json::to_string(&warm).unwrap()
        );

        // A different fleet shape is a different entry.
        let other = FleetSpec::new(4, 5, ShardPolicy::Hash).with_queue_depth(2);
        let _ = run_fleet_cached(
            &cfg,
            SchemeKind::Ipu,
            PaperTrace::Ts0,
            &other,
            &traces,
            Some(&cache),
        );
        assert_eq!(cache.stats().misses, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

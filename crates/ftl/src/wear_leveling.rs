//! Static wear-leveling (the paper's Table 2: "Wear-leveling: static").
//!
//! Dynamic allocation alone lets cold data squat on lightly-worn blocks while
//! the hot write stream cycles a shrinking set of blocks toward their
//! endurance limit. *Static* wear-leveling periodically checks the wear gap
//! within a region and, when it exceeds a threshold, migrates the data of the
//! least-worn in-use block elsewhere so that block (with plenty of endurance
//! left) rejoins the free pool and absorbs the hot stream.
//!
//! The policy here is the classic erase-count-gap trigger: every
//! `check_interval_erases` region erases, compare the minimum P/E count among
//! in-use blocks with the maximum P/E count in the region; a gap above
//! `wear_gap_threshold` triggers one migration.

use serde::{Deserialize, Serialize};

/// Static wear-leveling policy parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WearLevelingConfig {
    /// Master switch (Table 2 enables static wear-leveling).
    pub enabled: bool,
    /// Erases between wear-gap checks.
    pub check_interval_erases: u64,
    /// Minimum `max_pe − min_pe` gap (in cycles) that triggers a migration.
    pub wear_gap_threshold: u32,
}

impl Default for WearLevelingConfig {
    fn default() -> Self {
        WearLevelingConfig {
            enabled: true,
            check_interval_erases: 128,
            wear_gap_threshold: 64,
        }
    }
}

impl WearLevelingConfig {
    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.check_interval_erases == 0 {
            return Err("check_interval_erases must be positive".into());
        }
        if self.wear_gap_threshold == 0 {
            return Err("wear_gap_threshold must be positive".into());
        }
        Ok(())
    }
}

/// Trigger state for the static wear-leveler.
#[derive(Debug, Clone, Default)]
pub struct WearLeveler {
    erases_since_check: u64,
}

impl WearLeveler {
    pub fn new() -> Self {
        Self::default()
    }

    /// Notes one erase; returns `true` when a wear-gap check is due.
    pub fn note_erase(&mut self, cfg: &WearLevelingConfig) -> bool {
        if !cfg.enabled {
            return false;
        }
        self.erases_since_check += 1;
        if self.erases_since_check >= cfg.check_interval_erases {
            self.erases_since_check = 0;
            true
        } else {
            false
        }
    }

    /// Decides whether the observed wear spread warrants a migration.
    pub fn gap_exceeded(cfg: &WearLevelingConfig, min_pe: u32, max_pe: u32) -> bool {
        max_pe.saturating_sub(min_pe) > cfg.wear_gap_threshold
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // mutate-then-check idiom
mod tests {
    use super::*;

    #[test]
    fn disabled_leveler_never_checks() {
        let cfg = WearLevelingConfig {
            enabled: false,
            ..Default::default()
        };
        let mut wl = WearLeveler::new();
        for _ in 0..10_000 {
            assert!(!wl.note_erase(&cfg));
        }
    }

    #[test]
    fn checks_fire_on_the_interval() {
        let cfg = WearLevelingConfig {
            enabled: true,
            check_interval_erases: 4,
            wear_gap_threshold: 10,
        };
        let mut wl = WearLeveler::new();
        let fired: Vec<bool> = (0..9).map(|_| wl.note_erase(&cfg)).collect();
        assert_eq!(
            fired,
            vec![false, false, false, true, false, false, false, true, false]
        );
    }

    #[test]
    fn gap_comparison_is_strict_and_saturating() {
        let cfg = WearLevelingConfig {
            wear_gap_threshold: 64,
            ..Default::default()
        };
        assert!(!WearLeveler::gap_exceeded(&cfg, 4000, 4064));
        assert!(WearLeveler::gap_exceeded(&cfg, 4000, 4065));
        assert!(!WearLeveler::gap_exceeded(&cfg, 4100, 4000)); // inverted inputs
    }

    #[test]
    fn validation_catches_zeroes() {
        let mut cfg = WearLevelingConfig::default();
        cfg.check_interval_erases = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = WearLevelingConfig::default();
        cfg.wear_gap_threshold = 0;
        assert!(cfg.validate().is_err());
        assert!(WearLevelingConfig::default().validate().is_ok());
    }
}

//! Raw bit error rate (RBER) model.
//!
//! The paper consumes RBER measurements from Zhang et al. (FAST'16, ref. \[19\])
//! as a lookup inside SSDsim. Those hardware measurements are not public, so we
//! fit the standard exponential wear-out model
//!
//! ```text
//! rber_conv(pe) = A · exp(pe / τ)
//! ```
//!
//! to the published calibration point: conventional programming on an MLC block
//! at 4000 P/E cycles reads **2.8·10⁻⁴** (paper §2.2 / Figure 2). With the
//! default τ = 2000 that fixes `A = 2.8e-4 / e²`. The partial-programming curve
//! of Figure 2 (3.8·10⁻⁴ at 4000 P/E) is *not* part of this module: it emerges
//! from the disturb amplification model in [`crate::error::disturb`], calibrated
//! so a subpage that lived through three later partial programs reaches that
//! value.
//!
//! SLC-mode blocks store one bit per cell and can exhibit lower error rates;
//! a constant mode factor models that. The default factor is 1.0 because the
//! paper applies the same MLC-measured RBER data to its SLC-mode pages (the
//! only calibration source it cites); set a value < 1 to model SLC-mode's
//! wider read margins explicitly.

use serde::{Deserialize, Serialize};

use crate::mode::CellMode;

/// Exponential-in-P/E raw bit error rate model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BerModel {
    /// RBER of an MLC block at 0 P/E cycles (the `A` coefficient).
    pub mlc_base_rber: f64,
    /// Exponential growth constant τ, in P/E cycles.
    pub pe_tau: f64,
    /// Multiplier applied for SLC-mode blocks (< 1).
    pub slc_factor: f64,
}

/// Paper Figure 2 calibration point: RBER of conventional MLC programming at
/// 4000 P/E cycles.
pub const CALIBRATION_PE: f64 = 4000.0;
/// RBER at [`CALIBRATION_PE`] for conventional programming (paper §2.2).
pub const CALIBRATION_RBER_CONVENTIONAL: f64 = 2.8e-4;
/// RBER at [`CALIBRATION_PE`] for a maximally partially-programmed page.
pub const CALIBRATION_RBER_PARTIAL: f64 = 3.8e-4;

impl Default for BerModel {
    fn default() -> Self {
        let pe_tau = 2000.0;
        BerModel {
            mlc_base_rber: CALIBRATION_RBER_CONVENTIONAL / (CALIBRATION_PE / pe_tau).exp(),
            pe_tau,
            // The paper feeds SSDsim the MLC-measured RBER data of ref. [19]
            // for SLC-mode pages too (its only hardware calibration source),
            // so the default applies the same baseline to both modes. Set a
            // value < 1 to model SLC-mode's wider read margins explicitly.
            slc_factor: 1.0,
        }
    }
}

impl BerModel {
    /// Baseline RBER (before disturb amplification) of data in a block with
    /// `pe_cycles` erases, operated in `mode`.
    pub fn baseline_rber(&self, pe_cycles: u32, mode: CellMode) -> f64 {
        let mlc = self.mlc_base_rber * (pe_cycles as f64 / self.pe_tau).exp();
        match mode {
            CellMode::Mlc => mlc,
            CellMode::Slc => mlc * self.slc_factor,
        }
    }

    /// Checks that the model parameters are physically sensible.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.mlc_base_rber > 0.0 && self.mlc_base_rber < 1.0) {
            return Err(format!("mlc_base_rber {} out of (0,1)", self.mlc_base_rber));
        }
        if self.pe_tau <= 0.0 {
            return Err(format!("pe_tau {} must be positive", self.pe_tau));
        }
        if !(self.slc_factor > 0.0 && self.slc_factor <= 1.0) {
            return Err(format!("slc_factor {} out of (0,1]", self.slc_factor));
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // mutate-then-validate idiom
mod tests {
    use super::*;

    #[test]
    fn default_model_hits_figure2_calibration_point() {
        let m = BerModel::default();
        let rber = m.baseline_rber(4000, CellMode::Mlc);
        assert!(
            (rber - CALIBRATION_RBER_CONVENTIONAL).abs() < 1e-9,
            "expected {CALIBRATION_RBER_CONVENTIONAL}, got {rber}"
        );
    }

    #[test]
    fn rber_grows_monotonically_with_pe() {
        let m = BerModel::default();
        let mut last = 0.0;
        for pe in (0..10_000).step_by(500) {
            let r = m.baseline_rber(pe, CellMode::Mlc);
            assert!(r > last, "RBER must increase with wear (pe={pe})");
            last = r;
        }
    }

    #[test]
    fn slc_factor_scales_slc_mode_rber() {
        // Default: SLC-mode shares the MLC calibration data (paper's method).
        let m = BerModel::default();
        assert_eq!(
            m.baseline_rber(4000, CellMode::Slc),
            m.baseline_rber(4000, CellMode::Mlc)
        );
        // An explicit factor < 1 models SLC-mode's wider margins.
        let wide = BerModel {
            slc_factor: 0.2,
            ..BerModel::default()
        };
        for pe in [0, 1000, 4000, 8000] {
            assert!(
                wide.baseline_rber(pe, CellMode::Slc) < wide.baseline_rber(pe, CellMode::Mlc),
                "SLC must beat MLC at pe={pe}"
            );
        }
    }

    #[test]
    fn fresh_block_rber_is_small_but_nonzero() {
        let m = BerModel::default();
        let r = m.baseline_rber(0, CellMode::Mlc);
        assert!(r > 0.0 && r < 1e-4, "fresh MLC RBER {r} implausible");
    }

    #[test]
    fn validation_catches_nonsense() {
        let mut m = BerModel::default();
        m.slc_factor = 0.0;
        assert!(m.validate().is_err());
        let mut m = BerModel::default();
        m.pe_tau = -1.0;
        assert!(m.validate().is_err());
        let mut m = BerModel::default();
        m.mlc_base_rber = 1.5;
        assert!(m.validate().is_err());
        assert!(BerModel::default().validate().is_ok());
    }
}

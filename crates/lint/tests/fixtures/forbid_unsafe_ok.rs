//! Fixture: a crate root carrying `#![forbid(unsafe_code)]` (R5).
#![forbid(unsafe_code)]

pub fn noop() {}

//! `cargo bench -p ipu-bench --bench ablation_gc_policy`
//!
//! Ablation A2 (DESIGN.md): IPU with the paper's ISR GC policy (Equations
//! 1–2) vs IPU with plain greedy subpage victim selection. Quantifies how
//! much of IPU's behaviour comes from the cold-aware victim choice.

use ipu_core::experiment;
use ipu_core::ftl::SchemeKind;
use ipu_core::report::TextTable;

fn main() {
    let base = ipu_bench::bench_config();
    let mut table = TextTable::new(&[
        "Trace",
        "GC policy",
        "overall(ms)",
        "read err",
        "SLC erases",
        "evicted subpages",
        "GC page util",
    ]);
    for &trace in &base.traces {
        for (label, use_isr) in [("ISR (paper)", true), ("greedy", false)] {
            let mut cfg = base.clone();
            cfg.ftl.ipu_use_isr_gc = use_isr;
            let r = experiment::run_one(&cfg, trace, SchemeKind::Ipu);
            table.row(vec![
                trace.name().to_string(),
                label.to_string(),
                format!("{:.4}", r.overall_latency.mean_ms()),
                format!("{:.3e}", r.read_error_rate()),
                r.wear.slc_erases.to_string(),
                r.ftl.gc_evicted_subpages.to_string(),
                format!("{:.1}%", r.gc_page_utilization() * 100.0),
            ]);
        }
    }
    println!("Ablation A2 — ISR vs greedy GC victim selection inside IPU");
    println!("{}", table.render());
}

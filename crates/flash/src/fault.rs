//! Deterministic fault injection and the read-retry ladder.
//!
//! Real controllers survive media faults that this simulator previously only
//! counted: program-status failures retire the block, erase failures do too,
//! and reads that fail BCH decode walk a *read-retry ladder* — re-sensing the
//! page with shifted reference voltages, each step slower but with a lower
//! effective RBER. This module supplies both halves:
//!
//! * [`FaultProfile`] — seedable per-operation fault rates (program-fail,
//!   erase-fail, read-fail, transient RBER spikes), optionally scoped to one
//!   die or block. Draws are counter-based SplitMix64 hashes of
//!   `(seed, op counter, physical address)`, so runs are bit-reproducible and
//!   an all-zero profile is exactly the fault-free device.
//! * [`RetryLadder`] — the retry steps the FTL walks on an uncorrectable
//!   read: each step adds latency and scales the effective RBER fed to the
//!   ECC model (voltage-shifted re-reads recover most transient errors).
//!
//! The default for both is inert: zero rates, zero steps — byte-identical
//! behaviour and serialization compatibility with fault-unaware configs.

use serde::{Deserialize, Serialize};

use crate::error::sampling::{splitmix64, uniform};
use crate::time::Nanos;

/// Where injected faults strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FaultScope {
    /// Every die and block draws faults.
    #[default]
    Global,
    /// Only operations on this dense die index draw faults.
    Die { die: u32 },
    /// Only operations on this dense block index draw faults.
    Block { block: u64 },
}

/// Seedable, deterministic fault rates. All-zero (the default) injects
/// nothing and short-circuits before consuming any randomness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Seed isolating this profile's draw stream from the error-sampling RNG.
    pub seed: u64,
    /// Probability a program operation reports a status failure.
    pub program_fail: f64,
    /// Probability an erase operation reports a status failure.
    pub erase_fail: f64,
    /// Probability a read comes back uncorrectable regardless of its RBER
    /// (transient sense failure; a retry re-draws independently).
    pub read_fail: f64,
    /// Probability a read sees a transient RBER spike.
    pub rber_spike: f64,
    /// Multiplier applied to the read's RBER when a spike strikes.
    pub rber_spike_factor: f64,
    /// Which dies/blocks the profile applies to.
    pub scope: FaultScope,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            seed: 0,
            program_fail: 0.0,
            erase_fail: 0.0,
            read_fail: 0.0,
            rber_spike: 0.0,
            rber_spike_factor: 1.0,
            scope: FaultScope::Global,
        }
    }
}

/// Fault classes get disjoint hash salts so one op counter never correlates
/// draws across classes.
const SALT_PROGRAM: u64 = 0x50524F47; // "PROG"
const SALT_ERASE: u64 = 0x45524153; // "ERAS"
const SALT_READ: u64 = 0x52454144; // "READ"
const SALT_SPIKE: u64 = 0x53504B45; // "SPKE"

impl FaultProfile {
    /// Whether this profile can never inject anything.
    pub fn is_inert(&self) -> bool {
        let rates = [
            self.program_fail,
            self.erase_fail,
            self.read_fail,
            self.rber_spike,
        ];
        // ipu-lint: allow(float-eq) — rates come verbatim from config; 0.0 is the "disabled" sentinel, never a computed value
        rates.iter().all(|&r| r == 0.0)
    }

    /// Whether the scope covers an operation on `(die, block)`.
    fn in_scope(&self, die: u32, block_idx: u64) -> bool {
        match self.scope {
            FaultScope::Global => true,
            FaultScope::Die { die: d } => d == die,
            FaultScope::Block { block: b } => b == block_idx,
        }
    }

    #[inline]
    fn draw(&self, rate: f64, salt: u64, op_counter: u64, addr_key: u64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let key = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(splitmix64(salt ^ op_counter))
            .wrapping_add(addr_key);
        uniform(key) < rate
    }

    /// Whether the `op_counter`-th program on `(die, block_idx)` fails.
    pub fn program_fails(&self, op_counter: u64, die: u32, block_idx: u64, addr_key: u64) -> bool {
        self.in_scope(die, block_idx)
            && self.draw(self.program_fail, SALT_PROGRAM, op_counter, addr_key)
    }

    /// Whether the `op_counter`-th erase on `(die, block_idx)` fails.
    pub fn erase_fails(&self, op_counter: u64, die: u32, block_idx: u64, addr_key: u64) -> bool {
        self.in_scope(die, block_idx)
            && self.draw(self.erase_fail, SALT_ERASE, op_counter, addr_key)
    }

    /// Whether the `op_counter`-th read on `(die, block_idx)` fails outright.
    pub fn read_fails(&self, op_counter: u64, die: u32, block_idx: u64, addr_key: u64) -> bool {
        self.in_scope(die, block_idx) && self.draw(self.read_fail, SALT_READ, op_counter, addr_key)
    }

    /// RBER multiplier for the `op_counter`-th read (1.0 = no spike).
    pub fn read_rber_factor(
        &self,
        op_counter: u64,
        die: u32,
        block_idx: u64,
        addr_key: u64,
    ) -> f64 {
        if self.in_scope(die, block_idx)
            && self.draw(self.rber_spike, SALT_SPIKE, op_counter, addr_key)
        {
            self.rber_spike_factor
        } else {
            1.0
        }
    }

    /// Canned named profiles for the CLI's `--fault-profile`; returns the
    /// profile and its matching retry ladder.
    pub fn named(name: &str) -> Option<(FaultProfile, RetryLadder)> {
        match name {
            "none" => Some((FaultProfile::default(), RetryLadder::default())),
            "light" => Some((
                FaultProfile {
                    seed: 0x1117,
                    program_fail: 1e-4,
                    erase_fail: 1e-4,
                    read_fail: 1e-3,
                    rber_spike: 1e-3,
                    rber_spike_factor: 8.0,
                    scope: FaultScope::Global,
                },
                RetryLadder::standard(),
            )),
            "heavy" => Some((
                FaultProfile {
                    seed: 0x8EA7,
                    program_fail: 2e-3,
                    erase_fail: 1e-3,
                    read_fail: 1e-2,
                    rber_spike: 5e-3,
                    rber_spike_factor: 16.0,
                    scope: FaultScope::Global,
                },
                RetryLadder::standard(),
            )),
            _ => None,
        }
    }

    /// Names accepted by [`FaultProfile::named`].
    pub const NAMES: [&'static str; 3] = ["none", "light", "heavy"];

    /// Validates rates are probabilities and the spike factor is sane.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("program_fail", self.program_fail),
            ("erase_fail", self.erase_fail),
            ("read_fail", self.read_fail),
            ("rber_spike", self.rber_spike),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("fault rate {name} = {v} out of [0,1]"));
            }
        }
        if self.rber_spike_factor < 1.0 {
            return Err(format!(
                "rber_spike_factor {} must be >= 1.0",
                self.rber_spike_factor
            ));
        }
        Ok(())
    }
}

/// One step of the read-retry ladder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryStep {
    /// Extra sensing/setup latency this step adds on top of the re-read.
    pub extra_latency_ns: Nanos,
    /// Factor applied to the page's effective RBER for this re-read
    /// (voltage-shifted reads see fewer raw errors; < 1.0 helps).
    pub rber_scale: f64,
}

/// The retry steps walked, in order, after an uncorrectable read. Empty by
/// default: a fault-unaware config never retries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RetryLadder {
    pub steps: Vec<RetryStep>,
}

impl RetryLadder {
    /// A representative 4-step ladder: progressively slower reads with
    /// progressively stronger RBER reduction, as datasheet retry tables do.
    pub fn standard() -> Self {
        RetryLadder {
            steps: vec![
                RetryStep {
                    extra_latency_ns: 50_000,
                    rber_scale: 0.7,
                },
                RetryStep {
                    extra_latency_ns: 100_000,
                    rber_scale: 0.5,
                },
                RetryStep {
                    extra_latency_ns: 150_000,
                    rber_scale: 0.35,
                },
                RetryStep {
                    extra_latency_ns: 200_000,
                    rber_scale: 0.2,
                },
            ],
        }
    }

    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Validates scales are positive and non-increasing is not required but
    /// each scale must be in (0, 1].
    pub fn validate(&self) -> Result<(), String> {
        for (i, s) in self.steps.iter().enumerate() {
            if !(s.rber_scale > 0.0 && s.rber_scale <= 1.0) {
                return Err(format!(
                    "retry step {i}: rber_scale {} out of (0,1]",
                    s.rber_scale
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_is_inert() {
        let p = FaultProfile::default();
        assert!(p.is_inert());
        assert!(!p.program_fails(0, 0, 0, 0));
        assert!(!p.erase_fails(1, 0, 0, 0));
        assert!(!p.read_fails(2, 0, 0, 0));
        assert_eq!(p.read_rber_factor(3, 0, 0, 0), 1.0);
        assert!(RetryLadder::default().is_empty());
        p.validate().unwrap();
    }

    #[test]
    fn draws_are_deterministic_and_rate_accurate() {
        let p = FaultProfile {
            program_fail: 0.1,
            seed: 7,
            ..FaultProfile::default()
        };
        let a: Vec<bool> = (0..1000).map(|i| p.program_fails(i, 0, 0, i)).collect();
        let b: Vec<bool> = (0..1000).map(|i| p.program_fails(i, 0, 0, i)).collect();
        assert_eq!(a, b, "same key must draw identically");
        let hits = a.iter().filter(|&&x| x).count();
        assert!(
            (50..200).contains(&hits),
            "10% of 1000 draws ≈ 100, got {hits}"
        );
        // A different seed decorrelates the stream.
        let p2 = FaultProfile {
            seed: 8,
            ..p.clone()
        };
        let c: Vec<bool> = (0..1000).map(|i| p2.program_fails(i, 0, 0, i)).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn scope_restricts_faults() {
        let p = FaultProfile {
            program_fail: 1.0,
            scope: FaultScope::Die { die: 2 },
            ..FaultProfile::default()
        };
        assert!(p.program_fails(0, 2, 99, 0));
        assert!(!p.program_fails(0, 1, 99, 0));
        let p = FaultProfile {
            program_fail: 1.0,
            scope: FaultScope::Block { block: 5 },
            ..FaultProfile::default()
        };
        assert!(p.program_fails(0, 0, 5, 0));
        assert!(!p.program_fails(0, 0, 6, 0));
    }

    #[test]
    fn fault_classes_draw_independently() {
        let p = FaultProfile {
            program_fail: 0.5,
            erase_fail: 0.5,
            read_fail: 0.5,
            seed: 3,
            ..FaultProfile::default()
        };
        let prog: Vec<bool> = (0..256).map(|i| p.program_fails(i, 0, 0, 0)).collect();
        let ers: Vec<bool> = (0..256).map(|i| p.erase_fails(i, 0, 0, 0)).collect();
        assert_ne!(prog, ers, "salts must decorrelate fault classes");
    }

    #[test]
    fn named_profiles_resolve() {
        for name in FaultProfile::NAMES {
            let (p, ladder) = FaultProfile::named(name).unwrap();
            p.validate().unwrap();
            ladder.validate().unwrap();
            if name == "none" {
                assert!(p.is_inert());
                assert!(ladder.is_empty());
            } else {
                assert!(!p.is_inert());
                assert_eq!(ladder.len(), 4);
            }
        }
        assert!(FaultProfile::named("bogus").is_none());
    }

    #[test]
    fn rber_spike_scales_reads() {
        let p = FaultProfile {
            rber_spike: 1.0,
            rber_spike_factor: 8.0,
            ..FaultProfile::default()
        };
        assert_eq!(p.read_rber_factor(0, 0, 0, 0), 8.0);
    }

    #[test]
    fn validation_rejects_bad_rates() {
        let p = FaultProfile {
            program_fail: 1.5,
            ..FaultProfile::default()
        };
        assert!(p.validate().is_err());
        let p = FaultProfile {
            rber_spike_factor: 0.5,
            ..FaultProfile::default()
        };
        assert!(p.validate().is_err());
        let l = RetryLadder {
            steps: vec![RetryStep {
                extra_latency_ns: 0,
                rber_scale: 0.0,
            }],
        };
        assert!(l.validate().is_err());
    }

    #[test]
    fn profile_round_trips_through_serde() {
        let (p, l) = FaultProfile::named("heavy").unwrap();
        let pj = serde_json::to_string(&p).unwrap();
        let lj = serde_json::to_string(&l).unwrap();
        assert_eq!(p, serde_json::from_str::<FaultProfile>(&pj).unwrap());
        assert_eq!(l, serde_json::from_str::<RetryLadder>(&lj).unwrap());
        // A config serialized before the fault fields existed deserializes
        // to the inert default.
        let v: FaultProfile = serde_json::from_str(
            r#"{"seed":0,"program_fail":0.0,"erase_fail":0.0,"read_fail":0.0,
                "rber_spike":0.0,"rber_spike_factor":1.0,"scope":"Global"}"#,
        )
        .unwrap();
        assert!(v.is_inert());
    }
}

//! Queue arbitration: which submission queue does the controller service
//! next?

use crate::config::{ArbitrationPolicy, TenantSpec};

/// Stateful arbiter over a fixed tenant set. `pick` is called with the set of
/// tenants that currently have submitted-but-undispatched work and returns
/// the tenant to service; all policies are deterministic.
#[derive(Debug)]
pub struct Arbiter {
    policy: ArbitrationPolicy,
    weights: Vec<u64>,
    priorities: Vec<u32>,
    /// Last tenant served (round-robin scan starts after it).
    cursor: usize,
    /// Commands served per tenant (weighted round-robin virtual time).
    served: Vec<u64>,
}

impl Arbiter {
    pub fn new(policy: ArbitrationPolicy, tenants: &[TenantSpec]) -> Self {
        Arbiter {
            policy,
            weights: tenants.iter().map(|t| t.weight as u64).collect(),
            priorities: tenants.iter().map(|t| t.priority).collect(),
            cursor: tenants.len().saturating_sub(1),
            served: vec![0; tenants.len()],
        }
    }

    /// Picks among tenants with `ready[i] == true`; `None` if none are.
    pub fn pick(&mut self, ready: &[bool]) -> Option<usize> {
        debug_assert_eq!(ready.len(), self.weights.len());
        if !ready.iter().any(|&r| r) {
            return None;
        }
        let choice = match self.policy {
            ArbitrationPolicy::RoundRobin => self.rr_scan(ready, |_| true),
            ArbitrationPolicy::StrictPriority => {
                let top = ready
                    .iter()
                    .enumerate()
                    .filter(|&(_, &r)| r)
                    .map(|(i, _)| self.priorities[i])
                    .min()
                    .expect("checked non-empty");
                let priorities = self.priorities.clone();
                self.rr_scan(ready, |i| priorities[i] == top)
            }
            ArbitrationPolicy::WeightedRoundRobin => {
                // Lowest virtual time served/weight wins; compare by cross
                // multiplication to stay exact. Ties fall to the earlier index,
                // which the growing `served` counter then rotates naturally.
                let mut best: Option<usize> = None;
                for (i, &r) in ready.iter().enumerate() {
                    if !r {
                        continue;
                    }
                    best = Some(match best {
                        None => i,
                        Some(b) => {
                            let lhs = self.served[i] as u128 * self.weights[b] as u128;
                            let rhs = self.served[b] as u128 * self.weights[i] as u128;
                            if lhs < rhs {
                                i
                            } else {
                                b
                            }
                        }
                    });
                }
                best.expect("checked non-empty")
            }
        };
        self.cursor = choice;
        self.served[choice] += 1;
        Some(choice)
    }

    /// First eligible tenant scanning circularly from after the cursor.
    fn rr_scan(&self, ready: &[bool], eligible: impl Fn(usize) -> bool) -> usize {
        let n = ready.len();
        for step in 1..=n {
            let i = (self.cursor + step) % n;
            if ready[i] && eligible(i) {
                return i;
            }
        }
        unreachable!("pick() checked a ready tenant exists")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TenantSpec;

    fn tenants(n: usize) -> Vec<TenantSpec> {
        (0..n).map(|i| TenantSpec::new(format!("t{i}"))).collect()
    }

    #[test]
    fn round_robin_cycles_ready_queues() {
        let mut a = Arbiter::new(ArbitrationPolicy::RoundRobin, &tenants(3));
        let all = [true, true, true];
        let picks: Vec<usize> = (0..6).map(|_| a.pick(&all).unwrap()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        // Skips queues with nothing submitted.
        assert_eq!(a.pick(&[false, true, false]), Some(1));
        assert_eq!(a.pick(&[true, false, false]), Some(0));
        assert_eq!(a.pick(&[false, false, false]), None);
    }

    #[test]
    fn weighted_round_robin_matches_shares() {
        let specs = vec![
            TenantSpec::new("a").with_weight(3),
            TenantSpec::new("b").with_weight(1),
        ];
        let mut a = Arbiter::new(ArbitrationPolicy::WeightedRoundRobin, &specs);
        let mut counts = [0u32; 2];
        for _ in 0..400 {
            counts[a.pick(&[true, true]).unwrap()] += 1;
        }
        assert_eq!(counts, [300, 100]);
    }

    #[test]
    fn weighted_round_robin_interleaves() {
        // 2:1 should not serve the heavy tenant in one solid block.
        let specs = vec![
            TenantSpec::new("a").with_weight(2),
            TenantSpec::new("b").with_weight(1),
        ];
        let mut a = Arbiter::new(ArbitrationPolicy::WeightedRoundRobin, &specs);
        let picks: Vec<usize> = (0..6).map(|_| a.pick(&[true, true]).unwrap()).collect();
        assert_eq!(picks.iter().filter(|&&p| p == 0).count(), 4);
        // The light tenant is served within every 3-slot window.
        assert!(
            picks[..3].contains(&1) && picks[3..].contains(&1),
            "{picks:?}"
        );
    }

    #[test]
    fn strict_priority_prefers_urgent_class() {
        let specs = vec![
            TenantSpec::new("bulk").with_priority(1),
            TenantSpec::new("urgent").with_priority(0),
            TenantSpec::new("urgent2").with_priority(0),
        ];
        let mut a = Arbiter::new(ArbitrationPolicy::StrictPriority, &specs);
        // Urgent queues win whenever they have work, round-robin among equals.
        assert_eq!(a.pick(&[true, true, true]), Some(1));
        assert_eq!(a.pick(&[true, true, true]), Some(2));
        assert_eq!(a.pick(&[true, true, true]), Some(1));
        // Bulk runs only when the urgent class is empty.
        assert_eq!(a.pick(&[true, false, false]), Some(0));
    }
}

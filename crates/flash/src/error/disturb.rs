//! Program-disturb amplification model.
//!
//! Partial programming applies the program voltage `V_pp` to one word line while
//! other cells of the *same* word line see elevated bit-line voltages, and
//! adjacent word lines see the pass voltage `V_pass` (paper Figure 1). Each
//! event shifts the threshold voltage of already-programmed cells, raising their
//! raw bit error rate. We model the amplification multiplicatively:
//!
//! ```text
//! rber(subpage) = baseline_rber · (1 + α·in_page_disturbs + β·neighbour_disturbs)
//! ```
//!
//! **Calibration.** Figure 2 of the paper shows partial programming reading
//! 3.8·10⁻⁴ where conventional programming reads 2.8·10⁻⁴ (4000 P/E) — a ratio
//! of ≈1.357. A subpage programmed by the first of four program operations on a
//! page lives through three later partial programs, so we pick α = 0.357/3 ≈
//! 0.119 to make the *worst* subpage of a fully partially-programmed page hit
//! the published curve. Neighbour disturb is an order of magnitude weaker
//! (β = 0.012 by default): it exists for conventional programming too, and the
//! figure's curves only separate because of the in-page component.

use serde::{Deserialize, Serialize};

use super::ber::{CALIBRATION_RBER_CONVENTIONAL, CALIBRATION_RBER_PARTIAL};

/// Multiplicative disturb amplification parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisturbConfig {
    /// RBER amplification per in-page partial-program disturb event (α).
    pub in_page_alpha: f64,
    /// RBER amplification per neighbour-page program disturb event (β).
    pub neighbour_beta: f64,
    /// Cap on the total amplification factor, modelling saturation.
    pub max_amplification: f64,
    /// Optional read-disturb amplification per thousand reads of the block
    /// since its last erase (γ). Defaults to 0 (off): the paper's model only
    /// covers program disturb, but heavy-read studies can enable this.
    #[serde(default)]
    pub read_disturb_gamma_per_kread: f64,
}

impl Default for DisturbConfig {
    fn default() -> Self {
        // Worst-case in-page disturbs for a 4-subpage page is 3 events; solve
        // (1 + 3α) = partial/conventional from Figure 2.
        let ratio = CALIBRATION_RBER_PARTIAL / CALIBRATION_RBER_CONVENTIONAL;
        DisturbConfig {
            in_page_alpha: (ratio - 1.0) / 3.0,
            neighbour_beta: 0.012,
            max_amplification: 8.0,
            read_disturb_gamma_per_kread: 0.0,
        }
    }
}

impl DisturbConfig {
    /// Amplification factor for a subpage with the given disturb history.
    pub fn amplification(&self, in_page_disturbs: u16, neighbour_disturbs: u16) -> f64 {
        let f = 1.0
            + self.in_page_alpha * in_page_disturbs as f64
            + self.neighbour_beta * neighbour_disturbs as f64;
        f.min(self.max_amplification)
    }

    /// Effective RBER of a subpage given its baseline and disturb history.
    pub fn effective_rber(
        &self,
        baseline: f64,
        in_page_disturbs: u16,
        neighbour_disturbs: u16,
    ) -> f64 {
        baseline * self.amplification(in_page_disturbs, neighbour_disturbs)
    }

    /// Read-disturb amplification for a block that served `block_reads`
    /// reads since its last erase (1.0 when the model is disabled).
    pub fn read_disturb_factor(&self, block_reads: u64) -> f64 {
        (1.0 + self.read_disturb_gamma_per_kread * block_reads as f64 / 1000.0)
            .min(self.max_amplification)
    }

    /// Checks that parameters are sensible.
    pub fn validate(&self) -> Result<(), String> {
        if self.in_page_alpha < 0.0
            || self.neighbour_beta < 0.0
            || self.read_disturb_gamma_per_kread < 0.0
        {
            return Err("disturb coefficients must be non-negative".into());
        }
        if self.max_amplification < 1.0 {
            return Err(format!(
                "max_amplification {} must be at least 1",
                self.max_amplification
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // mutate-then-validate idiom
mod tests {
    use super::*;

    #[test]
    fn undisturbed_data_is_unamplified() {
        let d = DisturbConfig::default();
        assert_eq!(d.amplification(0, 0), 1.0);
        assert_eq!(d.effective_rber(2.8e-4, 0, 0), 2.8e-4);
    }

    #[test]
    fn three_in_page_disturbs_hit_figure2_partial_point() {
        let d = DisturbConfig::default();
        let eff = d.effective_rber(CALIBRATION_RBER_CONVENTIONAL, 3, 0);
        assert!(
            (eff - CALIBRATION_RBER_PARTIAL).abs() < 1e-9,
            "expected {CALIBRATION_RBER_PARTIAL}, got {eff}"
        );
    }

    #[test]
    fn in_page_disturb_dominates_neighbour_disturb() {
        let d = DisturbConfig::default();
        assert!(d.amplification(1, 0) > d.amplification(0, 1));
    }

    #[test]
    fn amplification_is_monotone_and_saturates() {
        let d = DisturbConfig::default();
        let mut last = 0.0;
        for n in 0..200u16 {
            let a = d.amplification(n, n);
            assert!(a >= last);
            last = a;
        }
        assert_eq!(last, d.max_amplification, "must saturate at the cap");
    }

    #[test]
    fn read_disturb_is_off_by_default_and_scales_when_enabled() {
        let d = DisturbConfig::default();
        assert_eq!(d.read_disturb_factor(0), 1.0);
        assert_eq!(
            d.read_disturb_factor(1_000_000),
            1.0,
            "must be inert by default"
        );
        let on = DisturbConfig {
            read_disturb_gamma_per_kread: 0.05,
            ..Default::default()
        };
        assert_eq!(on.read_disturb_factor(0), 1.0);
        assert!((on.read_disturb_factor(1000) - 1.05).abs() < 1e-12);
        assert!((on.read_disturb_factor(10_000) - 1.5).abs() < 1e-12);
        // Saturates at the shared cap.
        assert_eq!(on.read_disturb_factor(u64::MAX / 2), on.max_amplification);
    }

    #[test]
    fn validation_catches_nonsense() {
        let mut d = DisturbConfig::default();
        d.in_page_alpha = -0.1;
        assert!(d.validate().is_err());
        let mut d = DisturbConfig::default();
        d.max_amplification = 0.5;
        assert!(d.validate().is_err());
        assert!(DisturbConfig::default().validate().is_ok());
    }
}

//! # ipu-host — NVMe-style multi-queue host interface
//!
//! Models the host side of the storage stack that open-loop trace replay
//! abstracts away: per-tenant submission/completion queues with a bounded
//! queue depth, **closed-loop admission** (a request enters only when a slot
//! frees, shifting arrival times under backpressure), pluggable arbitration
//! across tenants (round-robin, weighted round-robin, strict priority), and
//! per-tenant QoS metrics — submission-to-completion latency, time-weighted
//! queue-occupancy histograms, admission-stall time and a min/max throughput
//! fairness ratio.
//!
//! The engine is device-agnostic: [`run_closed_loop`] drives queues and
//! arbitration, delegating each dispatched request to a callback that returns
//! its completion time. `ipu-sim` supplies the real FTL + flash device as
//! that callback in `ipu_sim::replay_closed_loop`.
//!
//! ```
//! use ipu_host::{run_closed_loop, HostConfig};
//!
//! // One tenant, queue depth 1, device that takes 100 ns per request:
//! // a burst of 3 requests at t=0 is admitted one at a time.
//! let cfg = HostConfig::single(1);
//! let (report, outcomes) = run_closed_loop(&cfg, &[vec![0, 0, 0]], {
//!     let mut busy = 0u64;
//!     move |_tenant, _seq, dispatch| {
//!         busy = dispatch.max(busy) + 100;
//!         busy
//!     }
//! });
//! assert_eq!(report.total_completed(), 3);
//! assert_eq!(outcomes.iter().map(|o| o.admit_ns).collect::<Vec<_>>(), vec![0, 100, 200]);
//! ```

#![forbid(unsafe_code)]

pub mod arbiter;
pub mod config;
pub mod metrics;
pub mod queue;

pub use arbiter::Arbiter;
pub use config::{ArbitrationPolicy, HostConfig, TenantSpec};
pub use metrics::{
    fairness_ratio, LatencyStats, OccupancyHistogram, ReliabilityStats, TenantMetrics,
};
pub use queue::{run_closed_loop, HostReport, RequestOutcome};

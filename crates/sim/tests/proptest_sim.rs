//! Property-based tests for the simulator layer: chip-schedule laws,
//! latency-statistics invariants and replay-level utilization bounds.

use ipu_ftl::SchemeKind;
use ipu_sim::{replay, ChipSchedule, LatencyStats, ReplayConfig};
use ipu_trace::{IoRequest, OpKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Host scheduling laws: ops on one chip never overlap, never start
    /// before their arrival, and the chip horizon equals the last end.
    #[test]
    fn host_ops_serialize_without_overlap(
        ops in proptest::collection::vec((0u32..4, 0u64..10_000, 1u64..500), 1..60)
    ) {
        let mut s = ChipSchedule::new(4);
        let mut last_end = [0u64; 4];
        // Arrival times must be non-decreasing per the engine's contract.
        let mut t = 0;
        for (chip, gap, dur) in ops {
            t += gap;
            let (start, end) = s.schedule(chip, t, dur);
            prop_assert!(start >= t, "started before arrival");
            prop_assert!(start >= last_end[chip as usize], "overlap on chip {chip}");
            prop_assert_eq!(end, start + dur);
            last_end[chip as usize] = end;
            prop_assert_eq!(s.busy_until(chip), end);
        }
    }

    /// Background ops never push the host horizon unless they were already
    /// in flight when the host op arrived, and total background work is
    /// conserved (done + backlog == enqueued).
    #[test]
    fn background_work_is_conserved(
        bg in proptest::collection::vec((0u64..5_000, 1u64..300), 0..40),
        probe_at in 10_000u64..50_000,
    ) {
        let mut s = ChipSchedule::new(1);
        let mut enqueued = 0u64;
        for (at, dur) in &bg {
            s.schedule_background(0, *at, *dur);
            enqueued += dur;
        }
        let (_, _end) = s.schedule(0, probe_at, 10);
        prop_assert_eq!(s.background_done() + s.background_backlog(0), enqueued);
        // After a probe far in the future, everything enqueued before it ran.
        let (_, _) = s.schedule(0, probe_at + enqueued + 10_000, 1);
        prop_assert_eq!(s.background_backlog(0), 0);
        prop_assert_eq!(s.background_done(), enqueued);
    }

    /// Reads only ever wait behind reads: with no other reads on the chip, a
    /// read starts exactly at its arrival regardless of queued write work.
    #[test]
    fn reads_preempt_queued_writes(
        writes in proptest::collection::vec(1u64..1_000, 0..20),
        read_at in 0u64..5_000,
    ) {
        let mut s = ChipSchedule::new(1);
        for d in writes {
            s.schedule(0, 0, d);
        }
        let (start, end) = s.schedule_read(0, read_at, 50);
        prop_assert_eq!(start, read_at);
        prop_assert_eq!(end, read_at + 50);
        // A second read queues behind the first.
        let (s2, _) = s.schedule_read(0, read_at, 50);
        prop_assert_eq!(s2, end);
    }

    /// LatencyStats invariants: count/mean/extrema are exact; percentiles are
    /// monotone in p and bounded by the extrema (bucket-resolution upper
    /// bound: at most 2× the true max).
    #[test]
    fn latency_stats_invariants(samples in proptest::collection::vec(1u64..10_000_000, 1..200)) {
        let mut s = LatencyStats::new();
        for &x in &samples {
            s.record(x);
        }
        let n = samples.len() as u64;
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        let mean = samples.iter().sum::<u64>() as f64 / n as f64;
        prop_assert_eq!(s.count(), n);
        prop_assert_eq!(s.min_ns(), Some(min));
        prop_assert_eq!(s.max_ns(), max);
        prop_assert!((s.mean_ns() - mean).abs() < 1e-6 * mean.max(1.0));

        let mut last = 0;
        for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = s.percentile_ns(p);
            prop_assert!(v >= last, "percentiles must be monotone");
            prop_assert!(v <= max, "p{p} {v} above max {max}");
            prop_assert!(v >= min, "p{p} {v} below min {min}");
            last = v;
        }
        // The tail orders correctly against the exact extrema.
        prop_assert!(s.percentile_ns(50.0) <= s.percentile_ns(99.0));
        prop_assert!(s.percentile_ns(99.0) <= max);
    }

    /// Read-heavy bursts: device utilization stays in (0, 1] and the reported
    /// horizon covers both per-chip channels. The regression this pins down:
    /// reads schedule on a separate suspension channel, so pooling read and
    /// write busy time against one horizon reported utilizations above 1.0
    /// whenever a read burst outran the write timeline.
    #[test]
    fn read_heavy_burst_utilization_is_bounded(
        seed_writes in 1usize..6,
        reads in proptest::collection::vec((0u64..100, 0u64..(1u64 << 22)), 20..120),
        scheme_idx in 0usize..3,
    ) {
        let scheme = [SchemeKind::Baseline, SchemeKind::Mga, SchemeKind::Ipu][scheme_idx];
        let cfg = ReplayConfig::small_for_tests(scheme);
        let mut requests = Vec::new();
        let mut t = 0u64;
        for i in 0..seed_writes {
            requests.push(IoRequest::new(t, OpKind::Write, (i as u64) << 16, 65536));
            t += 10;
        }
        // A dense read burst over the just-written (and some unmapped) space.
        for (gap, offset) in reads {
            t += gap;
            requests.push(IoRequest::new(t, OpKind::Read, offset, 4096));
        }
        let report = replay(&cfg, &requests, "burst");
        let chips = cfg.device.geometry.total_chips();
        let horizon = report.simulated_horizon_ns;
        let util = report.busy.utilization(chips, horizon);
        prop_assert!(util > 0.0, "a non-empty replay must report work");
        prop_assert!(util <= 1.0, "utilization {util} above 1");
        // Both channels are individually bounded, so the horizon covered both.
        prop_assert!(report.busy.program_utilization(chips, horizon) <= 1.0);
        prop_assert!(report.busy.read_utilization(chips, horizon) <= 1.0);
        // Horizon is at least the serial lower bound of each channel's work
        // spread over all chips.
        prop_assert!(horizon >= (report.busy.host_read_ns / chips as u64));
        prop_assert!(
            horizon >= ((report.busy.host_write_ns + report.busy.background_ns) / chips as u64)
        );
    }

    /// Merging is equivalent to recording the concatenation.
    #[test]
    fn latency_stats_merge_is_concat(
        a in proptest::collection::vec(1u64..1_000_000, 0..100),
        b in proptest::collection::vec(1u64..1_000_000, 0..100),
    ) {
        let mut sa = LatencyStats::new();
        let mut sb = LatencyStats::new();
        let mut sc = LatencyStats::new();
        for &x in &a { sa.record(x); sc.record(x); }
        for &x in &b { sb.record(x); sc.record(x); }
        sa.merge(&sb);
        prop_assert_eq!(sa.count(), sc.count());
        prop_assert_eq!(sa.min_ns(), sc.min_ns());
        prop_assert_eq!(sa.max_ns(), sc.max_ns());
        prop_assert!((sa.mean_ns() - sc.mean_ns()).abs() < 1e-9);
        for p in [25.0, 50.0, 95.0] {
            prop_assert_eq!(sa.percentile_ns(p), sc.percentile_ns(p));
        }
    }
}

//! Experiment runners: one function per table/figure of the paper.
//!
//! Each runner returns a serializable result struct that the report module
//! renders as the same rows/series the paper prints, and that EXPERIMENTS.md
//! records as paper-vs-measured.

use std::sync::Arc;

use ipu_flash::{BerModel, CellMode};
use ipu_ftl::{MappingMemory, SchemeKind};
use ipu_sim::{replay, SimReport};
use ipu_trace::{IoRequest, PaperTrace, SyntheticTraceSpec, TraceGenerator, TraceStats};
use serde::{Deserialize, Serialize};

use crate::cache::ReplayCache;
use crate::config::ExperimentConfig;
use crate::parallel::parallel_map;
use crate::trace_set::TraceSet;

/// The calibrated trace spec scaled to `cfg.scale` — the exact generator
/// input for one trace, and (with the replay config) the replay-cache key.
pub fn scaled_spec(cfg: &ExperimentConfig, trace: PaperTrace) -> SyntheticTraceSpec {
    let spec = ipu_trace::paper_trace(trace);
    let requests = ((spec.requests as f64) * cfg.scale).max(1.0) as u64;
    spec.with_requests(requests)
}

/// Generates the (scaled) calibrated request stream for one trace.
pub fn generate_trace(cfg: &ExperimentConfig, trace: PaperTrace) -> Vec<IoRequest> {
    TraceGenerator::new(scaled_spec(cfg, trace)).generate()
}

/// Replays one already-generated stream for one matrix cell, consulting the
/// replay cache when one is supplied.
fn replay_cell(
    cfg: &ExperimentConfig,
    trace: PaperTrace,
    scheme: SchemeKind,
    requests: &[IoRequest],
    cache: Option<&ReplayCache>,
) -> SimReport {
    let replay_cfg = cfg.replay_config(scheme);
    match cache {
        Some(cache) => cache.get_or_replay(
            &replay_cfg,
            &scaled_spec(cfg, trace),
            requests,
            trace.name(),
        ),
        None => replay(&replay_cfg, requests, trace.name()),
    }
}

/// Runs one (trace, scheme) cell of the evaluation matrix from scratch
/// (generates the stream itself, no sharing, no cache). The matrix runners
/// below share streams via [`TraceSet`] instead.
pub fn run_one(cfg: &ExperimentConfig, trace: PaperTrace, scheme: SchemeKind) -> SimReport {
    let requests = generate_trace(cfg, trace);
    replay_cell(cfg, trace, scheme, &requests, None)
}

/// [`run_one`] over a pre-generated shared stream and an optional replay
/// cache — the ablation runner reuses one [`TraceSet`] across every config
/// variant (the streams only depend on `(trace, scale)`).
pub fn run_one_with(
    cfg: &ExperimentConfig,
    trace: PaperTrace,
    scheme: SchemeKind,
    traces: &TraceSet,
    cache: Option<&ReplayCache>,
) -> SimReport {
    replay_cell(cfg, trace, scheme, &traces.get(trace), cache)
}

/// The full trace × scheme matrix, run with the configured parallelism.
/// `result[t][s]` corresponds to `cfg.traces[t]`, `cfg.schemes[s]`.
///
/// Generates each trace once (see [`TraceSet`]); use [`run_matrix_with`] to
/// share pre-generated streams across several matrices or enable the replay
/// cache.
pub fn run_matrix(cfg: &ExperimentConfig) -> Vec<Vec<SimReport>> {
    run_matrix_with(cfg, &TraceSet::generate(cfg), None)
}

/// [`run_matrix`] over pre-generated shared streams, optionally served from
/// (and filling) an on-disk [`ReplayCache`].
pub fn run_matrix_with(
    cfg: &ExperimentConfig,
    traces: &TraceSet,
    cache: Option<&ReplayCache>,
) -> Vec<Vec<SimReport>> {
    cfg.validate().expect("invalid experiment config");
    let jobs: Vec<(PaperTrace, SchemeKind, Arc<[IoRequest]>)> = cfg
        .traces
        .iter()
        .flat_map(|&t| {
            let requests = traces.get(t);
            cfg.schemes
                .iter()
                .map(move |&s| (t, s, Arc::clone(&requests)))
        })
        .collect();
    let flat = parallel_map(jobs, cfg.effective_threads(), |(t, s, requests)| {
        replay_cell(cfg, t, s, &requests, cache)
    });
    flat.chunks(cfg.schemes.len()).map(|c| c.to_vec()).collect()
}

// ---------------------------------------------------------------------------
// Tables 1 & 3
// ---------------------------------------------------------------------------

/// One trace's measured statistics next to the published row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceCalibrationRow {
    pub trace: String,
    pub measured: TraceStats,
    /// Published Table 3 row: (requests, write ratio, avg write KB, hot write).
    pub paper_table3: (u64, f64, f64, f64),
    /// Published Table 1 row: update-size buckets.
    pub paper_table1: [f64; 3],
}

/// Regenerates Tables 1 and 3: per-trace statistics of the calibrated streams.
pub fn run_trace_tables(cfg: &ExperimentConfig) -> Vec<TraceCalibrationRow> {
    run_trace_tables_with(cfg, &TraceSet::generate(cfg))
}

/// [`run_trace_tables`] over pre-generated shared streams (the CLI reuses
/// the same [`TraceSet`] it feeds the matrix runners).
pub fn run_trace_tables_with(
    cfg: &ExperimentConfig,
    traces: &TraceSet,
) -> Vec<TraceCalibrationRow> {
    let jobs: Vec<(PaperTrace, Arc<[IoRequest]>)> =
        cfg.traces.iter().map(|&t| (t, traces.get(t))).collect();
    parallel_map(jobs, cfg.effective_threads(), |(trace, requests)| {
        TraceCalibrationRow {
            trace: trace.name().to_string(),
            measured: TraceStats::compute(&requests),
            paper_table3: trace.table3_row(),
            paper_table1: trace.table1_row(),
        }
    })
}

// ---------------------------------------------------------------------------
// Figure 2 — RBER model curves
// ---------------------------------------------------------------------------

/// One P/E point of the Figure 2 reproduction.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BerCurvePoint {
    pub pe_cycles: u32,
    pub conventional: f64,
    /// Worst-case partially-programmed subpage (3 in-page disturbs).
    pub partial: f64,
}

/// Regenerates Figure 2 from the calibrated RBER + disturb models.
pub fn run_ber_curve(points: &[u32]) -> Vec<BerCurvePoint> {
    let ber = BerModel::default();
    let disturb = ipu_flash::DisturbConfig::default();
    points
        .iter()
        .map(|&pe| {
            let conventional = ber.baseline_rber(pe, CellMode::Mlc);
            BerCurvePoint {
                pe_cycles: pe,
                conventional,
                partial: disturb.effective_rber(conventional, 3, 0),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figures 5–11 — the main matrix, viewed through different metrics
// ---------------------------------------------------------------------------

/// Everything the main matrix yields, keyed for the per-figure reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatrixResult {
    pub traces: Vec<String>,
    pub schemes: Vec<SchemeKind>,
    pub reports: Vec<Vec<SimReport>>,
}

/// Runs the full evaluation matrix once; Figures 5, 6, 7, 8, 9, 10 and 11
/// are all views over this result.
pub fn run_main_matrix(cfg: &ExperimentConfig) -> MatrixResult {
    run_main_matrix_with(cfg, &TraceSet::generate(cfg), None)
}

/// [`run_main_matrix`] over pre-generated shared streams and an optional
/// replay cache.
pub fn run_main_matrix_with(
    cfg: &ExperimentConfig,
    traces: &TraceSet,
    cache: Option<&ReplayCache>,
) -> MatrixResult {
    MatrixResult {
        traces: cfg.traces.iter().map(|t| t.name().to_string()).collect(),
        schemes: cfg.schemes.clone(),
        reports: run_matrix_with(cfg, traces, cache),
    }
}

impl MatrixResult {
    /// Report for (trace index, scheme index).
    pub fn report(&self, trace: usize, scheme: usize) -> &SimReport {
        &self.reports[trace][scheme]
    }

    /// Finds the column index of a scheme.
    pub fn scheme_index(&self, scheme: SchemeKind) -> Option<usize> {
        self.schemes.iter().position(|&s| s == scheme)
    }

    /// Geometric-mean ratio of a metric between two schemes across traces
    /// (how the paper summarizes "X% on average").
    pub fn mean_ratio(
        &self,
        numerator: SchemeKind,
        denominator: SchemeKind,
        metric: impl Fn(&SimReport) -> f64,
    ) -> f64 {
        let ni = self.scheme_index(numerator).expect("scheme in matrix");
        let di = self.scheme_index(denominator).expect("scheme in matrix");
        let mut log_sum = 0.0;
        let mut n = 0u32;
        for row in &self.reports {
            let a = metric(&row[ni]);
            let b = metric(&row[di]);
            if a > 0.0 && b > 0.0 {
                log_sum += (a / b).ln();
                n += 1;
            }
        }
        if n == 0 {
            1.0
        } else {
            (log_sum / n as f64).exp()
        }
    }

    /// Figure 11 helper: mapping size normalized to Baseline per trace.
    pub fn normalized_mapping(&self, trace: usize) -> Vec<f64> {
        let baseline_idx = self
            .scheme_index(SchemeKind::Baseline)
            .expect("Figure 11 needs the Baseline scheme in the matrix");
        let base: MappingMemory = self.reports[trace][baseline_idx].mapping;
        self.reports[trace]
            .iter()
            .map(|r| r.mapping.normalized_to(&base))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Figures 13 & 14 — P/E cycle sweep
// ---------------------------------------------------------------------------

/// Matrix results at one pre-aged P/E point (§4.5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PeSweepResult {
    pub pe_points: Vec<u32>,
    /// One full matrix per P/E point.
    pub matrices: Vec<MatrixResult>,
}

/// Runs the §4.5 sweep; the paper uses P/E ∈ {1000, 2000, 4000, 8000}.
///
/// The streams only depend on `(traces, scale)`, not on aging, so one
/// [`TraceSet`] serves every P/E point.
pub fn run_pe_sweep(cfg: &ExperimentConfig, pe_points: &[u32]) -> PeSweepResult {
    run_pe_sweep_with(cfg, pe_points, &TraceSet::generate(cfg), None)
}

/// [`run_pe_sweep`] over pre-generated shared streams and an optional replay
/// cache (each P/E point keys separately: aging is part of the device config).
pub fn run_pe_sweep_with(
    cfg: &ExperimentConfig,
    pe_points: &[u32],
    traces: &TraceSet,
    cache: Option<&ReplayCache>,
) -> PeSweepResult {
    let matrices = pe_points
        .iter()
        .map(|&pe| run_main_matrix_with(&cfg.with_pe_cycles(pe), traces, cache))
        .collect();
    PeSweepResult {
        pe_points: pe_points.to_vec(),
        matrices,
    }
}

/// The paper's default P/E sweep points.
pub const PAPER_PE_POINTS: [u32; 4] = [1000, 2000, 4000, 8000];

#[cfg(test)]
mod tests {
    use super::*;

    /// A very small but complete experiment config for tests.
    fn tiny_cfg() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::scaled(0.002);
        cfg.traces = vec![PaperTrace::Ts0];
        cfg.schemes = SchemeKind::all().to_vec();
        cfg.threads = 1;
        cfg
    }

    #[test]
    fn ber_curve_reproduces_figure2_points() {
        let curve = run_ber_curve(&[0, 1000, 2000, 4000, 8000]);
        assert_eq!(curve.len(), 5);
        let at4000 = curve.iter().find(|p| p.pe_cycles == 4000).unwrap();
        assert!((at4000.conventional - 2.8e-4).abs() < 1e-9);
        assert!((at4000.partial - 3.8e-4).abs() < 1e-9);
        // Both curves grow with wear, partial always above conventional.
        for w in curve.windows(2) {
            assert!(w[1].conventional > w[0].conventional);
            assert!(w[1].partial > w[0].partial);
        }
        for p in &curve {
            assert!(p.partial > p.conventional);
        }
    }

    #[test]
    fn trace_tables_include_paper_rows() {
        let rows = run_trace_tables(&tiny_cfg());
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].trace, "ts0");
        assert_eq!(rows[0].paper_table3.0, 1_801_734);
        assert!(rows[0].measured.requests > 1000);
    }

    #[test]
    fn main_matrix_runs_all_schemes() {
        let m = run_main_matrix(&tiny_cfg());
        assert_eq!(m.reports.len(), 1);
        assert_eq!(m.reports[0].len(), 3);
        for (s, report) in m.reports[0].iter().enumerate() {
            assert_eq!(report.scheme, m.schemes[s]);
            assert!(report.requests > 0);
            assert!(report.overall_latency.mean_ns() > 0.0);
        }
        // Normalized mapping: Baseline is exactly 1.0.
        let norm = m.normalized_mapping(0);
        let b = m.scheme_index(SchemeKind::Baseline).unwrap();
        assert!((norm[b] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_ratio_is_one_for_identical_scheme() {
        let m = run_main_matrix(&tiny_cfg());
        let r = m.mean_ratio(SchemeKind::Ipu, SchemeKind::Ipu, |r| {
            r.overall_latency.mean_ns()
        });
        assert!((r - 1.0).abs() < 1e-12);
    }
}

//! Command implementations for the `ipu-sim` binary.

use std::fs::File;
use std::io::BufReader;

use ipu_core::ftl::SchemeKind;
use ipu_core::host::{ArbitrationPolicy, TenantSpec};
use ipu_core::sim::{replay_with_progress, ReplayConfig, SimReport};
use ipu_core::trace::{parse_msr_reader, PaperTrace, SplitStrategy};
use ipu_core::{
    experiment, report, run_profile, run_qd_sweep_with, ExperimentConfig, ExperimentRecord,
    QdSweepHostSpec, QdSweepResult, ReplayCache, TraceSet, PAPER_PE_POINTS, PAPER_QD_POINTS,
};

use crate::args::{ArgError, ParsedArgs};

/// Top-level usage text.
pub const USAGE: &str = "\
ipu-sim — reproduction of 'Intra-page Cache Update in SLC-mode with Partial
Programming in High Density SSDs' (ICPP 2021)

USAGE: ipu-sim <command> [options]

COMMANDS
  tables                Regenerate Tables 1 & 3 (trace calibration)
  figure <N>            Regenerate figure N ∈ {2,5,6,7,8,9,10,11,13,14}
  run                   One (trace, scheme) replay with a detailed report
  sweep                 The §4.5 P/E-cycle sweep (Figures 13 & 14)
  simulate              Closed-loop multi-queue host replay: QD × scheme sweep
                        with per-tenant latency, occupancy and fairness
  reliability           Fault-injection experiment: request completion status,
                        read-retry recovery and bad-block retirement per scheme
                        (defaults to --fault-profile light)
  replay <trace.csv>    Replay a real MSR-format trace file
  ablate <levels|gc|nop>  Design-choice ablations (DESIGN.md A1–A3)
  figures               Render the main figures as SVG files (--out <dir>)
  profile               Deterministic wall-clock benchmark: replay with the
                        ipu-obs instrumentation armed, write BENCH_profile.json
                        (throughput + per-phase wall time; CI's perf gate input)
  scorecard             Check the paper's claims against a measured matrix
                        (--save writes the JSON the CI scorecard gate diffs)
  fleet                 Sharded multi-device serving simulation: route tenants
                        onto N devices and binary-search the max tenant count
                        meeting a p99 SLO per scheme (or run a fixed fleet
                        with --tenants); caches by default
  help                  Show this text

COMMON OPTIONS (commands accept only the options they use; anything else
is rejected rather than silently ignored)
  --scale <f>           Fraction of the published request counts (default 0.1;
                        the device scales along, preserving cache pressure)
  --traces <a,b,...>    Subset of ts0,wdev0,lun1,usr0,ads,lun2 (default: all)
  --schemes <a,b,...>   Subset of baseline,mga,ipu,ipu+ (default: the paper's
                        three; ipu+ is this repo's §5 future-work extension)
  --pe <n>              Pre-aged P/E cycles (default 4000)
  --threads <n>         Sweep parallelism (default: cores − 1)
  --save <file.json>    Also write the raw results as JSON
  --fault-profile <p>   Media fault injection: none | light | heavy
                        (default none; light/heavy also arm the read-retry
                        ladder — see DESIGN.md §10)
  --cache | --no-cache  Force the on-disk replay cache on/off. Replays are
                        pure functions of (device, FTL, scheme, trace spec);
                        figure/figures/sweep cache by default, everything
                        else opts in with --cache. Cache hits are reported;
                        corrupt entries are re-simulated, never trusted.
  --cache-dir <dir>     Cache location (default .ipu-cache; implies --cache)

PROFILE OPTIONS
  --out <file.json>     Where to write the benchmark profile
                        (default BENCH_profile.json)
  --events <file.jsonl> Also dump the structured span/counter/event log as
                        JSON Lines (one object per line, `type`-tagged)

FLEET OPTIONS
  --devices <n>         Fleet size (default 64)
  --policy <p>          Shard router: hash | range | lba-stripe (default hash)
  --queue-depth <n>     Per-tenant queue depth on each device (default 1:
                        p99 then measures sharing cost, not self-queueing)
  --arbitration <p>     rr | wrr | prio (default rr)
  --slo-p99-ms <ms>     Capacity-search SLO on fleet p99 service latency
                        (default 1.0)
  --max-tenants <n>     Capacity-search upper bound (default 65536)
  --tenants <n>         Skip the search; run one fleet at exactly n tenants
  --replication <p>     none | mirror-pair (default none): duplicate writes
                        onto the mirror device, arm retries + hedged reads
  --fault-plan <spec>   none | failstop:<k>@<frac> | failslow:<k>x<f>@<frac>
                        | brownout:<k>@<from>-<until> (default none)
  --faulty <k>          Also search degraded capacity with k devices
                        fail-stopped mid-run (pairs with --replication)
  --out <dir>           Also render the fleet SVG figures into <dir>
  --from <run.json>     Re-render figures from a --save file, no simulation

SIMULATE OPTIONS
  --queue-depth <a,b>   Queue depths to sweep (default 1,4,16,64)
  --tenants <spec>      Count (`4`) or `name[:weight[:priority]]` list
                        (`fg:4:0,bg:1:1`); default one tenant
  --arbitration <p>     rr | wrr | prio (default rr)
  --dispatch-overhead <ns>  Serial command-fetch cost per dispatch (default 0)
  --split <s>           Trace → tenant streams: rr | lba | clone (default rr)
  --out <dir>           Also render a qd_sweep_<trace>.svg tail-latency chart
                        (per-tenant p99/p999 vs queue depth) into <dir>

EXAMPLES
  ipu-sim figure 5 --scale 0.25
  ipu-sim run --traces ts0 --schemes ipu --scale 0.1
  ipu-sim replay /data/msr/ts0.csv --schemes ipu
  ipu-sim ablate gc --scale 0.05
  ipu-sim simulate --traces ts0 --queue-depth 1,16 --tenants fg:4:0,bg:1:1 \\
          --arbitration wrr --scale 0.01
  ipu-sim reliability --fault-profile heavy --traces ts0 --scale 0.05
  ipu-sim profile --traces ts0 --scale 0.02 --threads 1
  ipu-sim scorecard --traces ts0 --scale 0.02 --save scorecard.json
  ipu-sim fleet --traces ts0 --scale 0.02 --devices 64 --policy hash \\
          --slo-p99-ms 1.0 --save fleet.json --out figures
  ipu-sim fleet --tenants 4096 --devices 64 --policy lba-stripe --scale 0.02
  ipu-sim fleet --traces ts0 --scale 0.02 --devices 8 --faulty 1 \\
          --replication mirror-pair --save fleet_degraded.json
";

/// Builds the experiment config from the common flags.
fn config_from(args: &ParsedArgs) -> Result<ExperimentConfig, ArgError> {
    let scale: f64 = args.flag_parsed("scale", 0.1)?;
    if !(scale > 0.0 && scale <= 1.0) {
        return Err(ArgError(format!("--scale {scale} out of (0, 1]")));
    }
    let mut cfg = ExperimentConfig::scaled(scale);
    cfg.device.initial_pe_cycles = args.flag_parsed("pe", 4000u32)?;
    cfg.threads = args.flag_parsed("threads", 0usize)?;
    if let Some(names) = args.flag_list("traces") {
        cfg.traces = names
            .iter()
            .map(|n| parse_trace(n))
            .collect::<Result<_, _>>()?;
    }
    if let Some(names) = args.flag_list("schemes") {
        cfg.schemes = names
            .iter()
            .map(|n| parse_scheme(n))
            .collect::<Result<_, _>>()?;
    }
    if let Some(name) = args.flag("fault-profile") {
        apply_fault_profile(&mut cfg.device, name)?;
    }
    cfg.validate().map_err(ArgError)?;
    Ok(cfg)
}

/// Resolves the replay-cache flags. `default_on` is the command's policy
/// (pure figure-regeneration commands cache by default); `--cache`,
/// `--cache-dir` and `--no-cache` override it.
fn cache_from(args: &ParsedArgs, default_on: bool) -> Result<Option<ReplayCache>, ArgError> {
    let force_on = args.switch("cache") || args.flag("cache-dir").is_some();
    let force_off = args.switch("no-cache");
    if args.switch("cache") && force_off {
        return Err(ArgError("--cache and --no-cache conflict".into()));
    }
    if force_off {
        return Ok(None);
    }
    if force_on || default_on {
        let dir = args.flag("cache-dir").unwrap_or(ReplayCache::DEFAULT_DIR);
        return Ok(Some(ReplayCache::new(dir)));
    }
    Ok(None)
}

/// The hit/miss summary line appended to a cached command's output.
fn cache_line(cache: &ReplayCache) -> String {
    format!(
        "replay cache ({}): {}\n",
        cache.dir().display(),
        cache.stats()
    )
}

/// Applies a named fault profile (and its read-retry ladder) to the device.
fn apply_fault_profile(
    device: &mut ipu_core::flash::DeviceConfig,
    name: &str,
) -> Result<(), ArgError> {
    let (fault, retry) = ipu_core::flash::FaultProfile::named(name).ok_or_else(|| {
        ArgError(format!(
            "unknown fault profile `{name}` (expected one of: {})",
            ipu_core::flash::FaultProfile::NAMES.join(", ")
        ))
    })?;
    device.fault = fault;
    device.retry = retry;
    Ok(())
}

fn parse_trace(name: &str) -> Result<PaperTrace, ArgError> {
    PaperTrace::all()
        .into_iter()
        .find(|t| t.name() == name)
        .ok_or_else(|| ArgError(format!("unknown trace `{name}`")))
}

fn parse_scheme(name: &str) -> Result<SchemeKind, ArgError> {
    match name.to_ascii_lowercase().as_str() {
        "baseline" => Ok(SchemeKind::Baseline),
        "mga" => Ok(SchemeKind::Mga),
        "ipu" => Ok(SchemeKind::Ipu),
        "ipu+" | "ipuplus" => Ok(SchemeKind::IpuPlus),
        other => Err(ArgError(format!("unknown scheme `{other}`"))),
    }
}

fn maybe_save<T: serde::Serialize + serde::de::DeserializeOwned>(
    args: &ParsedArgs,
    cfg: &ExperimentConfig,
    experiment: &str,
    result: T,
) -> Result<(), ArgError> {
    if let Some(path) = args.flag("save") {
        ExperimentRecord::new(experiment, cfg.clone(), result)
            .save(path)
            .map_err(|e| ArgError(format!("cannot save {path}: {e}")))?;
        eprintln!("saved raw results to {path}");
    }
    Ok(())
}

/// `ipu-sim tables`
pub fn cmd_tables(args: &ParsedArgs) -> Result<String, ArgError> {
    let cfg = config_from(args)?;
    let traces = TraceSet::generate(&cfg);
    let rows = experiment::run_trace_tables_with(&cfg, &traces);
    maybe_save(args, &cfg, "tables", rows.clone())?;
    Ok(format!(
        "{}\n{}",
        report::render_table1(&rows),
        report::render_table3(&rows)
    ))
}

/// `ipu-sim figure <N>`
pub fn cmd_figure(args: &ParsedArgs) -> Result<String, ArgError> {
    let n = args
        .positionals
        .first()
        .ok_or_else(|| ArgError("figure needs a number, e.g. `ipu-sim figure 5`".into()))?
        .as_str();
    if n == "2" {
        let points: Vec<u32> = (0..=10).map(|i| i * 1000).collect();
        return Ok(report::render_fig2(&experiment::run_ber_curve(&points)));
    }
    let cfg = config_from(args)?;
    let cache = cache_from(args, true)?;
    let traces = TraceSet::generate(&cfg);
    if n == "13" || n == "14" {
        let sweep = experiment::run_pe_sweep_with(&cfg, &PAPER_PE_POINTS, &traces, cache.as_ref());
        maybe_save(args, &cfg, "pe_sweep", sweep.clone())?;
        let mut text = report::render_pe_sweep(&sweep);
        if let Some(cache) = &cache {
            text.push_str(&cache_line(cache));
        }
        return Ok(text);
    }
    let matrix = experiment::run_main_matrix_with(&cfg, &traces, cache.as_ref());
    let mut text = match n {
        "5" => report::render_fig5(&matrix),
        "6" => report::render_fig6(&matrix),
        "7" => report::render_fig7(&matrix),
        "8" => report::render_fig8(&matrix),
        "9" => report::render_fig9(&matrix),
        "10" => report::render_fig10(&matrix),
        "11" => report::render_fig11(&matrix),
        other => return Err(ArgError(format!("no figure `{other}` (2,5..11,13,14)"))),
    };
    maybe_save(args, &cfg, &format!("fig{n}"), matrix)?;
    if let Some(cache) = &cache {
        text.push_str(&cache_line(cache));
    }
    Ok(text)
}

/// `ipu-sim run`
pub fn cmd_run(args: &ParsedArgs) -> Result<String, ArgError> {
    let cfg = config_from(args)?;
    let cache = cache_from(args, false)?;
    // Arm the observability layer so the detailed report can say where the
    // replay's wall time went, not just what the simulation computed.
    ipu_core::obs::reset();
    ipu_core::obs::enable();
    let t0 = std::time::Instant::now();
    // One generation per trace, shared across all schemes of the row.
    let traces = TraceSet::generate(&cfg);
    let reports = experiment::run_matrix_with(&cfg, &traces, cache.as_ref());
    let mut out = String::new();
    for row in &reports {
        for r in row {
            out.push_str(&detailed_report(r));
            out.push('\n');
        }
    }
    let total = t0.elapsed().as_secs_f64();
    ipu_core::obs::disable();
    let snapshot = ipu_core::obs::snapshot();
    let phases = ipu_core::profile::phase_breakdown(&snapshot, total);
    out.push_str(&report::render_phase_breakdown(&phases, total));
    if let Some(cache) = &cache {
        out.push_str(&cache_line(cache));
    }
    Ok(out)
}

/// `ipu-sim profile`: the deterministic wall-clock benchmark harness. Writes
/// `BENCH_profile.json` (the perf gate's input) and prints the human-readable
/// throughput and phase breakdown.
pub fn cmd_profile(args: &ParsedArgs) -> Result<String, ArgError> {
    let mut cfg = config_from(args)?;
    if args.flag_list("schemes").is_none() {
        // The perf gate watches the extension scheme too: profile defaults to
        // the full set, unlike the paper-trio default of other commands.
        cfg.schemes = SchemeKind::all_extended().to_vec();
    }
    let profile = run_profile(&cfg);

    let out_path = args.flag("out").unwrap_or("BENCH_profile.json");
    let json = serde_json::to_string_pretty(&profile)
        .map_err(|e| ArgError(format!("cannot serialize profile: {e}")))?;
    std::fs::write(out_path, json)
        .map_err(|e| ArgError(format!("cannot write {out_path}: {e}")))?;

    if let Some(events_path) = args.flag("events") {
        // One JSON object per line: the aggregate snapshot + counter
        // fingerprint first, then every buffered event in record order.
        let mut jsonl =
            ipu_core::obs::snapshot_jsonl(&ipu_core::obs::snapshot(), Some(&profile.counters));
        jsonl.push_str(&ipu_core::obs::events_jsonl());
        std::fs::write(events_path, jsonl)
            .map_err(|e| ArgError(format!("cannot write {events_path}: {e}")))?;
        eprintln!("wrote event log to {events_path}");
    }

    let mut s = String::new();
    s.push_str(&format!(
        "Benchmark profile — {} requests over {} trace(s) × {} scheme(s) at scale {}\n\
         wall time {:.3}s, throughput {:.0} simulated ops/sec\n\n",
        profile.requests,
        profile.traces.len(),
        profile.schemes.len(),
        profile.scale,
        profile.wall_seconds,
        profile.sim_ops_per_sec,
    ));
    s.push_str(&report::render_phase_breakdown(
        &profile.phases,
        profile.wall_seconds,
    ));
    s.push('\n');
    let mut t = report::TextTable::new(&["Trace", "Scheme", "requests", "wall(s)", "ops/sec"]);
    for r in &profile.runs {
        t.row(vec![
            r.trace.clone(),
            r.scheme.label().to_string(),
            r.requests.to_string(),
            format!("{:.3}", r.wall_seconds),
            format!("{:.0}", r.ops_per_sec),
        ]);
    }
    s.push_str(&t.render());
    s.push_str(&format!("\nwrote benchmark profile to {out_path}\n"));
    Ok(s)
}

/// `ipu-sim scorecard`: evaluate the paper's claims on a measured matrix and
/// (with --save) write the JSON the CI scorecard gate compares.
pub fn cmd_scorecard(args: &ParsedArgs) -> Result<String, ArgError> {
    let cfg = config_from(args)?;
    let cache = cache_from(args, false)?;
    let traces = TraceSet::generate(&cfg);
    let matrix = experiment::run_main_matrix_with(&cfg, &traces, cache.as_ref());
    let results = ipu_core::evaluate_scorecard(&matrix);
    maybe_save(args, &cfg, "scorecard", results.clone())?;
    let mut text = ipu_core::scorecard::render(&results);
    if let Some(cache) = &cache {
        text.push_str(&cache_line(cache));
    }
    Ok(text)
}

/// Formats the detailed single-run report used by `run` and `replay`.
pub fn detailed_report(r: &SimReport) -> String {
    let mut s = String::new();
    s.push_str(&format!("=== {} on {} ===\n", r.scheme, r.trace));
    s.push_str(&format!("requests            : {}\n", r.requests));
    for (label, lat) in [
        ("read", &r.read_latency),
        ("write", &r.write_latency),
        ("overall", &r.overall_latency),
    ] {
        s.push_str(&format!(
            "{label:<8} latency    : mean {:.4} ms  p50 {:.3}  p95 {:.3}  p99 {:.3} ms  (n={})\n",
            lat.mean_ms(),
            lat.percentile_ns(50.0) as f64 / 1e6,
            lat.percentile_ns(95.0) as f64 / 1e6,
            lat.percentile_ns(99.0) as f64 / 1e6,
            lat.count()
        ));
    }
    s.push_str(&format!(
        "read error rate     : {:.3e}\n",
        r.read_error_rate()
    ));
    s.push_str(&format!(
        "host writes         : {} SLC / {} MLC subpages\n",
        r.ftl.host_subpages_to_slc, r.ftl.host_subpages_to_mlc
    ));
    s.push_str(&format!(
        "level distribution  : {:?} (HighDensity/Work/Monitor/Hot)\n",
        r.ftl
            .level_distribution()
            .map(|f| format!("{:.1}%", f * 100.0))
    ));
    s.push_str(&format!(
        "intra-page / upgrade: {} / {}\n",
        r.ftl.intra_page_updates, r.ftl.upgraded_writes
    ));
    s.push_str(&format!(
        "GC                  : {} SLC runs, {} MLC runs, util {:.1}%\n",
        r.ftl.gc_runs_slc,
        r.ftl.gc_runs_mlc,
        r.gc_page_utilization() * 100.0
    ));
    s.push_str(&format!(
        "erases              : {} SLC / {} MLC\n",
        r.wear.slc_erases, r.wear.mlc_erases
    ));
    s.push_str(&format!(
        "mapping table       : {} bytes\n",
        r.mapping.total()
    ));
    let horizon = r.simulated_horizon_ns.max(1);
    s.push_str(&format!(
        "device busy         : host-writes {:.1}s, host-reads {:.1}s, GC {:.1}s \
         over {:.1}s simulated\n",
        r.busy.host_write_ns as f64 / 1e9,
        r.busy.host_read_ns as f64 / 1e9,
        r.busy.background_ns as f64 / 1e9,
        horizon as f64 / 1e9,
    ));
    s.push_str(&format!(
        "reliability         : {} success / {} recovered / {} failed \
         (availability {:.6})\n",
        r.reliability.success,
        r.reliability.recovered,
        r.reliability.failed,
        r.reliability.availability(),
    ));
    s.push_str(&format!(
        "recovery counters   : {} read retries ({} recovered, {:.3} ms ladder), \
         {} uncorrectable, {} retired blocks, {} program retries, {} data-loss, \
         {} scrub rewrites\n",
        r.ftl.read_retries,
        r.ftl.recovered_reads,
        r.ftl.retry_latency_ns as f64 / 1e6,
        r.ftl.host_uncorrectable_reads,
        r.ftl.retired_blocks,
        r.ftl.program_retries,
        r.ftl.data_loss_events,
        r.ftl.scrub_rewrites,
    ));
    s
}

/// `ipu-sim figures --out <dir>`
pub fn cmd_figures(args: &ParsedArgs) -> Result<String, ArgError> {
    let out = args.flag("out").unwrap_or("figures");
    let cfg = config_from(args)?;
    let cache = cache_from(args, true)?;
    // One trace generation serves the main matrix and all four P/E matrices.
    let traces = TraceSet::generate(&cfg);
    let matrix = experiment::run_main_matrix_with(&cfg, &traces, cache.as_ref());
    let sweep = experiment::run_pe_sweep_with(&cfg, &PAPER_PE_POINTS, &traces, cache.as_ref());
    let written = ipu_core::svg::write_figures(std::path::Path::new(out), &matrix, Some(&sweep))
        .map_err(|e| ArgError(format!("cannot write figures: {e}")))?;
    let mut text = written
        .iter()
        .map(|p| format!("wrote {}", p.display()))
        .collect::<Vec<_>>()
        .join("\n");
    if let Some(cache) = &cache {
        text.push('\n');
        text.push_str(&cache_line(cache));
    }
    Ok(text)
}

/// `ipu-sim sweep`
pub fn cmd_sweep(args: &ParsedArgs) -> Result<String, ArgError> {
    let cfg = config_from(args)?;
    let cache = cache_from(args, true)?;
    let traces = TraceSet::generate(&cfg);
    let sweep = experiment::run_pe_sweep_with(&cfg, &PAPER_PE_POINTS, &traces, cache.as_ref());
    maybe_save(args, &cfg, "pe_sweep", sweep.clone())?;
    let mut text = report::render_pe_sweep(&sweep);
    if let Some(cache) = &cache {
        text.push_str(&cache_line(cache));
    }
    Ok(text)
}

/// `ipu-sim simulate`: the closed-loop host-interface QD sweep.
pub fn cmd_simulate(args: &ParsedArgs) -> Result<String, ArgError> {
    let cfg = config_from(args)?;
    let qd_points: Vec<usize> = match args.flag_list("queue-depth") {
        None => PAPER_QD_POINTS.to_vec(),
        Some(raw) => raw
            .iter()
            .map(|s| {
                s.parse::<usize>()
                    .ok()
                    .filter(|&q| q >= 1)
                    .ok_or_else(|| ArgError(format!("bad queue depth `{s}`")))
            })
            .collect::<Result<_, _>>()?,
    };
    if qd_points.is_empty() {
        return Err(ArgError("--queue-depth needs at least one depth".into()));
    }
    let tenants = TenantSpec::parse_list(args.flag("tenants").unwrap_or("1")).map_err(ArgError)?;
    let arbitration =
        ArbitrationPolicy::parse(args.flag("arbitration").unwrap_or("rr")).map_err(ArgError)?;
    let split = SplitStrategy::parse(args.flag("split").unwrap_or("rr")).map_err(ArgError)?;
    let host = QdSweepHostSpec {
        tenants,
        arbitration,
        dispatch_overhead_ns: args.flag_parsed("dispatch-overhead", 0u64)?,
        split: split.label().to_string(),
    };

    // Closed-loop reports are not cached (the cache keys open-loop replays),
    // but the streams are still generated once and shared across all sweeps.
    let traces = TraceSet::generate(&cfg);
    let fig_dir = args.flag("out").map(std::path::PathBuf::from);
    if let Some(dir) = &fig_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| ArgError(format!("cannot create {}: {e}", dir.display())))?;
    }
    let mut out = String::new();
    let mut results: Vec<QdSweepResult> = Vec::new();
    for &trace in &cfg.traces {
        let sweep = run_qd_sweep_with(&cfg, trace, &host, &qd_points, &traces);
        out.push_str(&report::render_qd_sweep(&sweep));
        out.push('\n');
        if let Some(dir) = &fig_dir {
            let path = dir.join(format!("qd_sweep_{}.svg", trace.name()));
            std::fs::write(&path, ipu_core::svg::qd_sweep_chart(&sweep))
                .map_err(|e| ArgError(format!("cannot write {}: {e}", path.display())))?;
            out.push_str(&format!("wrote {}\n", path.display()));
        }
        results.push(sweep);
    }
    maybe_save(args, &cfg, "qd_sweep", results)?;
    Ok(out)
}

/// `ipu-sim reliability`: the trace × scheme matrix under fault injection,
/// reported as completion status plus the recovery-path counters.
pub fn cmd_reliability(args: &ParsedArgs) -> Result<String, ArgError> {
    let mut cfg = config_from(args)?;
    if args.flag("fault-profile").is_none() {
        apply_fault_profile(&mut cfg.device, "light")?;
    }
    let cache = cache_from(args, false)?;
    let traces = TraceSet::generate(&cfg);
    let matrix = experiment::run_main_matrix_with(&cfg, &traces, cache.as_ref());
    let mut text = report::render_reliability(&matrix);
    maybe_save(args, &cfg, "reliability", matrix)?;
    if let Some(cache) = &cache {
        text.push_str(&cache_line(cache));
    }
    Ok(text)
}

/// `ipu-sim replay <trace.csv>`
pub fn cmd_replay(args: &ParsedArgs) -> Result<String, ArgError> {
    let path = args
        .positionals
        .first()
        .ok_or_else(|| ArgError("replay needs a trace file path".into()))?;
    let scheme = match args.flag_list("schemes").as_deref() {
        None => SchemeKind::Ipu,
        Some([one]) => parse_scheme(one)?,
        Some(_) => return Err(ArgError("replay takes exactly one scheme".into())),
    };
    let file = File::open(path).map_err(|e| ArgError(format!("cannot open {path}: {e}")))?;
    let requests = parse_msr_reader(BufReader::new(file))
        .map_err(|e| ArgError(format!("cannot parse {path}: {e}")))?;
    eprintln!("replaying {} requests under {scheme} ...", requests.len());
    let mut cfg = ReplayConfig::paper_scale(scheme);
    if let Some(name) = args.flag("fault-profile") {
        apply_fault_profile(&mut cfg.device, name)?;
    }
    let r = replay_with_progress(&cfg, &requests, path, |done, total| {
        if total > 0 && done % (1 << 18) == 0 {
            eprintln!("  {done}/{total}");
        }
    });
    Ok(detailed_report(&r))
}

/// `ipu-sim ablate <levels|gc|nop>`
pub fn cmd_ablate(args: &ParsedArgs) -> Result<String, ArgError> {
    let which = args
        .positionals
        .first()
        .ok_or_else(|| ArgError("ablate needs one of: levels, gc, nop".into()))?
        .as_str();
    let base = config_from(args)?;
    let cache = cache_from(args, false)?;
    let cache = cache.as_ref();
    // The ablations vary FTL/device knobs, never the traces — one generation
    // serves every variant.
    let traces = TraceSet::generate(&base);
    let mut out = String::new();
    match which {
        "levels" => {
            for max_level in [1u8, 2, 3] {
                let mut cfg = base.clone();
                cfg.ftl.ipu_max_level = max_level;
                for &trace in &cfg.traces {
                    let r = experiment::run_one_with(&cfg, trace, SchemeKind::Ipu, &traces, cache);
                    out.push_str(&format!(
                        "{} levels≤{}: overall {:.4} ms, intra {}, upgrades {}\n",
                        trace.name(),
                        max_level,
                        r.overall_latency.mean_ms(),
                        r.ftl.intra_page_updates,
                        r.ftl.upgraded_writes
                    ));
                }
            }
        }
        "gc" => {
            for (label, isr) in [("isr", true), ("greedy", false)] {
                let mut cfg = base.clone();
                cfg.ftl.ipu_use_isr_gc = isr;
                for &trace in &cfg.traces {
                    let r = experiment::run_one_with(&cfg, trace, SchemeKind::Ipu, &traces, cache);
                    out.push_str(&format!(
                        "{} gc={label}: overall {:.4} ms, evicted {}, SLC erases {}\n",
                        trace.name(),
                        r.overall_latency.mean_ms(),
                        r.ftl.gc_evicted_subpages,
                        r.wear.slc_erases
                    ));
                }
            }
        }
        "nop" => {
            for limit in [1u8, 2, 4] {
                let mut cfg = base.clone();
                cfg.device.max_partial_programs = limit;
                for &trace in &cfg.traces {
                    for &scheme in &cfg.schemes {
                        let r = experiment::run_one_with(&cfg, trace, scheme, &traces, cache);
                        out.push_str(&format!(
                            "{} {} nop={limit}: overall {:.4} ms, util {:.1}%\n",
                            trace.name(),
                            scheme.label(),
                            r.overall_latency.mean_ms(),
                            r.gc_page_utilization() * 100.0
                        ));
                    }
                }
            }
        }
        other => return Err(ArgError(format!("unknown ablation `{other}`"))),
    }
    Ok(out)
}

/// `ipu-sim fleet`: the sharded multi-device serving simulation. Default
/// mode binary-searches, per trace × scheme, the max tenant count whose
/// fleet-wide p99 service latency stays under the SLO; `--tenants <n>` pins
/// the fleet size instead; `--from <run.json>` re-renders the figures of a
/// saved run without simulating anything.
pub fn cmd_fleet(args: &ParsedArgs) -> Result<String, ArgError> {
    use ipu_fleet::{
        render_capacity, render_degradation, render_fleet_report, run_capacity_search,
        run_degraded_capacity_search, run_fleet_cached, write_fleet_charts, FleetFaultPlan,
        FleetRunResult, FleetSpec, ReplicationPolicy, ShardPolicy, SloTarget,
    };

    // Chart-only mode: replot a saved run.
    if let Some(path) = args.flag("from") {
        let out = args.flag("out").unwrap_or("figures");
        let record: ExperimentRecord<FleetRunResult> = ExperimentRecord::load(path)
            .map_err(|e| ArgError(format!("cannot load {path}: {e}")))?;
        let written = write_fleet_charts(std::path::Path::new(out), &record.result)
            .map_err(|e| ArgError(format!("cannot write charts: {e}")))?;
        return Ok(written
            .iter()
            .map(|p| format!("wrote {}", p.display()))
            .collect::<Vec<_>>()
            .join("\n"));
    }

    let mut cfg = config_from(args)?;
    // The fleet question is per-scheme capacity, so default to every scheme
    // (incl. ipu+) but only the headline trace — a 6-trace × 4-scheme
    // capacity search is an explicit ask, not a default.
    if args.flag_list("traces").is_none() {
        cfg.traces = vec![PaperTrace::Ts0];
    }
    if args.flag_list("schemes").is_none() {
        cfg.schemes = SchemeKind::all_extended().to_vec();
    }
    let devices: usize = args.flag_parsed("devices", 64usize)?;
    if devices < 1 {
        return Err(ArgError("--devices must be ≥ 1".into()));
    }
    let policy = ShardPolicy::parse(args.flag("policy").unwrap_or("hash")).map_err(ArgError)?;
    let queue_depth: usize = args.flag_parsed("queue-depth", 1usize)?;
    if queue_depth < 1 {
        return Err(ArgError("--queue-depth must be ≥ 1".into()));
    }
    let arbitration =
        ArbitrationPolicy::parse(args.flag("arbitration").unwrap_or("rr")).map_err(ArgError)?;
    let slo_ms: f64 = args.flag_parsed("slo-p99-ms", 1.0f64)?;
    if slo_ms <= 0.0 || slo_ms.is_nan() {
        return Err(ArgError(format!("--slo-p99-ms {slo_ms} must be > 0")));
    }
    let slo_p99_ns = (slo_ms * 1e6) as u64;
    let tenant_cap: u64 = args.flag_parsed("max-tenants", 65_536u64)?;
    if tenant_cap < 1 {
        return Err(ArgError("--max-tenants must be ≥ 1".into()));
    }
    let fixed: Option<usize> = match args.flag("tenants") {
        None => None,
        Some(s) => Some(
            s.parse::<usize>()
                .ok()
                .filter(|&t| t >= 1)
                .ok_or_else(|| ArgError(format!("bad tenant count `{s}`")))?,
        ),
    };
    let replication =
        ReplicationPolicy::parse(args.flag("replication").unwrap_or("none")).map_err(ArgError)?;
    // The fault-plan seed is fixed: degraded runs must be reproducible and
    // comparable across invocations, and per-device fault seeds already
    // decorrelate below it.
    let fault_plan = FleetFaultPlan::parse(args.flag("fault-plan").unwrap_or("none"), devices, 7)
        .map_err(ArgError)?;
    let faulty: usize = args.flag_parsed("faulty", 0usize)?;
    if faulty > devices / 2 {
        return Err(ArgError(format!(
            "--faulty {faulty} exceeds the {} mirror pairs of {devices} devices",
            devices / 2
        )));
    }
    if faulty > 0 && fixed.is_some() {
        return Err(ArgError(
            "--faulty runs a degraded capacity search; it cannot combine with --tenants \
             (use --fault-plan to fault a fixed-size fleet)"
                .into(),
        ));
    }

    // Fleet runs are pure functions of their inputs and a capacity search
    // re-probes many of the same shapes, so the cache defaults on.
    let cache = cache_from(args, true)?;
    let traces = TraceSet::generate(&cfg);
    let spec_for = |tenants: usize| {
        FleetSpec::new(devices, tenants, policy)
            .with_queue_depth(queue_depth)
            .with_arbitration(arbitration)
            .with_replication(replication)
            .with_fault_plan(fault_plan.clone())
    };

    let mut run = FleetRunResult {
        devices,
        policy: policy.label().to_string(),
        queue_depth,
        slo_p99_ns,
        replication: replication.label().to_string(),
        fault_plan: fault_plan.label(),
        faulty_devices: faulty,
        ..FleetRunResult::default()
    };
    let mut out = String::new();
    match fixed {
        Some(tenants) => {
            for &trace in &cfg.traces {
                for &scheme in &cfg.schemes {
                    let report = run_fleet_cached(
                        &cfg,
                        scheme,
                        trace,
                        &spec_for(tenants),
                        &traces,
                        cache.as_ref(),
                    );
                    out.push_str(&render_fleet_report(&report));
                    out.push('\n');
                    run.reports.push(report);
                }
            }
        }
        None => {
            let target = SloTarget {
                p99_ns: slo_p99_ns,
                tenant_cap,
            };
            for &trace in &cfg.traces {
                for &scheme in &cfg.schemes {
                    run.capacity.push(run_capacity_search(
                        &cfg,
                        trace,
                        scheme,
                        &spec_for(1),
                        target,
                        &traces,
                        cache.as_ref(),
                    ));
                    if faulty > 0 {
                        run.degraded.push(run_degraded_capacity_search(
                            &cfg,
                            trace,
                            scheme,
                            &spec_for(1),
                            target,
                            faulty,
                            0.5,
                            replication,
                            &traces,
                            cache.as_ref(),
                        ));
                    }
                }
            }
            out.push_str(&render_capacity(&run.capacity));
            if faulty > 0 {
                out.push('\n');
                out.push_str(&render_degradation(
                    &run.capacity,
                    &run.degraded,
                    faulty,
                    replication.label(),
                ));
            }
        }
    }
    maybe_save(args, &cfg, "fleet", run.clone())?;
    if let Some(dir) = args.flag("out") {
        let written = write_fleet_charts(std::path::Path::new(dir), &run)
            .map_err(|e| ArgError(format!("cannot write charts: {e}")))?;
        for p in &written {
            out.push_str(&format!("wrote {}\n", p.display()));
        }
    }
    if let Some(cache) = &cache {
        out.push_str(&cache_line(cache));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(s: &str, flags: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(s.split_whitespace().map(str::to_string), flags).unwrap()
    }

    const COMMON: &[&str] = &[
        "scale",
        "traces",
        "schemes",
        "pe",
        "threads",
        "save",
        "fault-profile",
    ];

    #[test]
    fn config_respects_flags() {
        let p = parsed(
            "run --scale 0.01 --traces ts0,lun2 --schemes ipu --pe 8000",
            COMMON,
        );
        let cfg = config_from(&p).unwrap();
        assert_eq!(cfg.scale, 0.01);
        assert_eq!(cfg.traces, vec![PaperTrace::Ts0, PaperTrace::Lun2]);
        assert_eq!(cfg.schemes, vec![SchemeKind::Ipu]);
        assert_eq!(cfg.device.initial_pe_cycles, 8000);
    }

    #[test]
    fn config_rejects_nonsense() {
        assert!(config_from(&parsed("run --scale 2.0", COMMON)).is_err());
        assert!(config_from(&parsed("run --traces nosuch", COMMON)).is_err());
        assert!(config_from(&parsed("run --schemes nosuch", COMMON)).is_err());
        assert!(config_from(&parsed("run --pe pony", COMMON)).is_err());
        assert!(config_from(&parsed("run --fault-profile pony", COMMON)).is_err());
    }

    #[test]
    fn fault_profile_arms_injection_and_retry() {
        let cfg = config_from(&parsed("run --fault-profile light", COMMON)).unwrap();
        assert!(!cfg.device.fault.is_inert());
        assert!(!cfg.device.retry.steps.is_empty());
        // Default stays the pre-fault-model device.
        let cfg = config_from(&parsed("run", COMMON)).unwrap();
        assert!(cfg.device.fault.is_inert());
        assert!(cfg.device.retry.steps.is_empty());
    }

    #[test]
    fn tiny_reliability_run_reports_recovery() {
        let p = parsed(
            "reliability --scale 0.002 --traces lun2 --threads 1",
            COMMON,
        );
        let text = cmd_reliability(&p).unwrap();
        assert!(text.contains("Reliability"));
        assert!(text.contains("recovered"));
        assert!(text.contains("retry-ladder latency"));
    }

    #[test]
    fn figure_2_runs_instantly() {
        let p = parsed("figure 2", COMMON);
        let text = cmd_figure(&p).unwrap();
        assert!(text.contains("Figure 2"));
        assert!(text.contains("4000"));
    }

    #[test]
    fn unknown_figure_is_an_error() {
        let p = parsed("figure 42 --scale 0.001", COMMON);
        assert!(cmd_figure(&p).is_err());
    }

    #[test]
    fn tiny_run_produces_detailed_report() {
        let p = parsed(
            "run --scale 0.001 --traces lun2 --schemes ipu --threads 1",
            COMMON,
        );
        let text = cmd_run(&p).unwrap();
        assert!(text.contains("IPU on lun2"));
        assert!(text.contains("read error rate"));
        assert!(text.contains("mapping table"));
    }

    const SIMULATE: &[&str] = &[
        "scale",
        "traces",
        "schemes",
        "pe",
        "threads",
        "save",
        "queue-depth",
        "tenants",
        "arbitration",
        "dispatch-overhead",
        "split",
        "fault-profile",
        "out",
    ];

    #[test]
    fn tiny_simulate_reports_every_tenant() {
        let p = parsed(
            "simulate --scale 0.001 --traces lun2 --schemes ipu --queue-depth 2 \
             --tenants alpha,beta --threads 1",
            SIMULATE,
        );
        let text = cmd_simulate(&p).unwrap();
        assert!(text.contains("Queue-depth sweep"));
        assert!(text.contains("alpha"));
        assert!(text.contains("beta"));
        assert!(text.contains("fairness"));
        assert!(text.contains("svc p999(ms)"), "tail column missing");
    }

    #[test]
    fn simulate_out_writes_tail_latency_svg() {
        let dir = std::env::temp_dir().join("ipu_cli_qd_svg_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = parsed(
            &format!(
                "simulate --scale 0.001 --traces lun2 --schemes ipu \
                 --queue-depth 1,4 --threads 1 --out {}",
                dir.display()
            ),
            SIMULATE,
        );
        let text = cmd_simulate(&p).unwrap();
        let svg_path = dir.join("qd_sweep_lun2.svg");
        assert!(text.contains("qd_sweep_lun2.svg"));
        let body = std::fs::read_to_string(&svg_path).unwrap();
        assert!(body.starts_with("<svg"), "not an SVG document");
        assert!(body.contains("p999"), "chart must plot the p999 series");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulate_rejects_bad_specs() {
        for bad in [
            "simulate --scale 0.001 --queue-depth 0",
            "simulate --scale 0.001 --queue-depth pony",
            "simulate --scale 0.001 --arbitration fifo",
            "simulate --scale 0.001 --split hash",
            "simulate --scale 0.001 --tenants a:0",
        ] {
            assert!(
                cmd_simulate(&parsed(bad, SIMULATE)).is_err(),
                "`{bad}` must fail"
            );
        }
    }

    const PROFILE: &[&str] = &[
        "scale",
        "traces",
        "schemes",
        "pe",
        "threads",
        "out",
        "events",
        "fault-profile",
    ];

    #[test]
    fn tiny_profile_writes_benchmark_json_and_events() {
        let dir = std::env::temp_dir().join("ipu_cli_profile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH_profile.json");
        let events = dir.join("events.jsonl");
        let p = parsed(
            &format!(
                "profile --scale 0.002 --traces ts0 --schemes ipu --threads 1 \
                 --out {} --events {}",
                out.display(),
                events.display()
            ),
            PROFILE,
        );
        let text = cmd_profile(&p).unwrap();
        assert!(text.contains("Phase breakdown"));
        assert!(text.contains("ops/sec"));

        let profile: ipu_core::BenchProfile =
            serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
        assert_eq!(profile.schema_version, ipu_core::BENCH_SCHEMA_VERSION);
        assert!(profile.requests > 0);
        assert!(profile.sim_ops_per_sec > 0.0);
        assert!(profile.counters.get("requests").unwrap_or(0) > 0);

        // The JSONL log: one `type`-tagged JSON object per line.
        let log = std::fs::read_to_string(&events).unwrap();
        assert!(!log.is_empty());
        for line in log.lines() {
            assert!(line.contains("\"type\""), "untagged JSONL line: {line}");
        }
    }

    #[test]
    fn tiny_scorecard_renders_and_saves() {
        let dir = std::env::temp_dir().join("ipu_cli_scorecard_test");
        std::fs::create_dir_all(&dir).unwrap();
        let save = dir.join("scorecard.json");
        let p = parsed(
            &format!(
                "scorecard --scale 0.01 --traces ts0 --threads 1 --save {}",
                save.display()
            ),
            COMMON,
        );
        let text = cmd_scorecard(&p).unwrap();
        assert!(text.contains("scorecard"));
        assert!(text.contains("REPRODUCED"));
        // The saved JSON is what CI's scorecard gate parses (in Python, where
        // the NaN→null sentinels of ordering claims are fine); spot-check the
        // fields it reads.
        let json = std::fs::read_to_string(&save).unwrap();
        assert!(json.contains("\"outcome\""));
        assert!(json.contains("\"claim\""));
        assert!(json.contains("Reproduced"));
    }

    fn parsed_with_switches(s: &str, flags: &[&str], switches: &[&str]) -> ParsedArgs {
        ParsedArgs::parse_with_switches(s.split_whitespace().map(str::to_string), flags, switches)
            .unwrap()
    }

    #[test]
    fn figure_caches_replays_across_invocations() {
        let dir = std::env::temp_dir().join(format!("ipu_cli_cache_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut flags = COMMON.to_vec();
        flags.push("cache-dir");
        let argv = format!(
            "figure 5 --scale 0.002 --traces lun2 --schemes ipu --threads 1 --cache-dir {}",
            dir.display()
        );
        // First run simulates and fills the cache; second serves every cell
        // from disk and renders the identical figure.
        let p = parsed_with_switches(&argv, &flags, &["cache", "no-cache"]);
        let cold = cmd_figure(&p).unwrap();
        assert!(
            cold.contains("misses"),
            "cold run must report misses: {cold}"
        );
        let warm = cmd_figure(&p).unwrap();
        assert!(warm.contains("1 hits, 0 misses"), "warm run: {warm}");
        let strip = |s: &str| s.lines().filter(|l| !l.contains("replay cache")).count();
        assert_eq!(strip(&cold), strip(&warm));

        // --no-cache wins over a default-on command.
        let p = parsed_with_switches(
            "figure 5 --scale 0.002 --traces lun2 --schemes ipu --threads 1 --no-cache",
            COMMON,
            &["cache", "no-cache"],
        );
        let off = cmd_figure(&p).unwrap();
        assert!(!off.contains("replay cache"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn conflicting_cache_switches_error() {
        let p = parsed_with_switches(
            "figure 5 --scale 0.002 --cache --no-cache",
            COMMON,
            &["cache", "no-cache"],
        );
        assert!(cmd_figure(&p).is_err());
    }

    #[test]
    fn ablate_rejects_unknown_kind() {
        let p = parsed("ablate nosuch --scale 0.001", COMMON);
        assert!(cmd_ablate(&p).is_err());
    }

    #[test]
    fn replay_requires_a_path() {
        let p = parsed("replay", COMMON);
        assert!(cmd_replay(&p).is_err());
        let p = parsed("replay /definitely/missing.csv", COMMON);
        assert!(cmd_replay(&p).is_err());
    }

    const FLEET: &[&str] = &[
        "scale",
        "traces",
        "schemes",
        "pe",
        "threads",
        "save",
        "fault-profile",
        "devices",
        "policy",
        "queue-depth",
        "arbitration",
        "slo-p99-ms",
        "max-tenants",
        "tenants",
        "replication",
        "fault-plan",
        "faulty",
        "out",
        "from",
        "cache-dir",
    ];

    #[test]
    fn tiny_fixed_fleet_reports_every_scheme() {
        let p = parsed_with_switches(
            "fleet --scale 0.002 --traces ts0 --schemes baseline,ipu --tenants 4 \
             --devices 2 --queue-depth 2 --threads 1 --no-cache",
            FLEET,
            &["cache", "no-cache"],
        );
        let text = cmd_fleet(&p).unwrap();
        assert!(text.contains("fleet ts0 / Baseline [hash]"), "{text}");
        assert!(text.contains("fleet ts0 / IPU [hash]"), "{text}");
        assert!(text.contains("2 devices, 4 tenants, QD 2"));
        assert!(text.contains("Hot shard"));
        assert!(!text.contains("replay cache"));
    }

    #[test]
    fn fleet_capacity_search_saves_and_replots() {
        let dir = std::env::temp_dir().join(format!("ipu_cli_fleet_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let save = dir.join("fleet.json");
        // A generous SLO so the tiny search saturates at the 4-tenant cap.
        let p = parsed_with_switches(
            &format!(
                "fleet --scale 0.002 --traces ts0 --schemes ipu --devices 2 \
                 --max-tenants 4 --slo-p99-ms 10000 --threads 1 --no-cache --save {}",
                save.display()
            ),
            FLEET,
            &["cache", "no-cache"],
        );
        let text = cmd_fleet(&p).unwrap();
        assert!(text.contains("max tenants"), "{text}");
        assert!(text.contains("4"), "{text}");

        // --from replots the saved run without simulating.
        let figs = dir.join("figs");
        let p = parsed_with_switches(
            &format!("fleet --from {} --out {}", save.display(), figs.display()),
            FLEET,
            &["cache", "no-cache"],
        );
        let text = cmd_fleet(&p).unwrap();
        assert!(text.contains("fleet_capacity.svg"), "{text}");
        assert!(text.contains("fleet_load_ts0.svg"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn degraded_fleet_search_pairs_healthy_and_faulted_capacity() {
        // 2 devices = 1 mirror pair; a generous SLO keeps both searches at
        // the 2-tenant cap fast.
        let p = parsed_with_switches(
            "fleet --scale 0.002 --traces ts0 --schemes ipu --devices 2 \
             --max-tenants 2 --slo-p99-ms 10000 --threads 1 --no-cache \
             --faulty 1 --replication mirror-pair",
            FLEET,
            &["cache", "no-cache"],
        );
        let text = cmd_fleet(&p).unwrap();
        assert!(text.contains("max tenants"), "{text}");
        assert!(
            text.contains("k=1 faulty (mirror-pair)"),
            "missing degradation table:\n{text}"
        );
        assert!(text.contains("retained"), "{text}");
    }

    #[test]
    fn faulted_fixed_fleet_reports_the_reliability_ledger() {
        let p = parsed_with_switches(
            "fleet --scale 0.002 --traces ts0 --schemes ipu --tenants 4 \
             --devices 2 --threads 1 --no-cache \
             --fault-plan failstop:1@0.5 --replication mirror-pair",
            FLEET,
            &["cache", "no-cache"],
        );
        let text = cmd_fleet(&p).unwrap();
        assert!(text.contains("faults failstop:1@0.50"), "{text}");
        assert!(text.contains("replication mirror-pair"), "{text}");
        assert!(text.contains("health:"), "{text}");
    }

    #[test]
    fn fleet_rejects_bad_specs() {
        for bad in [
            "fleet --scale 0.002 --devices 0",
            "fleet --scale 0.002 --policy pony",
            "fleet --scale 0.002 --queue-depth 0",
            "fleet --scale 0.002 --tenants 0",
            "fleet --scale 0.002 --tenants pony",
            "fleet --scale 0.002 --slo-p99-ms 0",
            "fleet --scale 0.002 --max-tenants 0",
            "fleet --scale 0.002 --arbitration fifo",
            "fleet --scale 0.002 --replication raid6",
            "fleet --scale 0.002 --fault-plan explode:1@0.5",
            "fleet --scale 0.002 --devices 4 --faulty 3",
            "fleet --scale 0.002 --tenants 4 --faulty 1",
            "fleet --from /definitely/missing.json",
        ] {
            assert!(
                cmd_fleet(&parsed_with_switches(bad, FLEET, &["cache", "no-cache"])).is_err(),
                "`{bad}` must fail"
            );
        }
    }
}

//! GC policy laboratory: watch the paper's ISR victim-selection policy
//! (Equations 1–2) at work, then compare IPU end-to-end under ISR vs greedy
//! victim selection.
//!
//! ```text
//! cargo run --release --example gc_policy_lab [-- <scale>]
//! ```

use ipu_core::flash::{BlockAddr, CellMode, DeviceConfig, FlashDevice, Spa};
use ipu_core::ftl::{isr_score, BlockLevel, CacheMeta, SchemeKind};
use ipu_core::trace::PaperTrace;
use ipu_core::{experiment, ExperimentConfig};

/// Reconstructs the paper's Figure 4(a) example: candidate A holds recently
/// updated (hot) data, candidate B equally many invalid subpages but old cold
/// data — ISR must pick B.
fn figure4_example() {
    println!("— Figure 4(a) worked example —");
    let mut dev = FlashDevice::new(DeviceConfig::small_for_tests());
    let mut meta = CacheMeta::new();
    let g = dev.config().geometry.clone();
    let now: u64 = 10_000_000_000; // 10 s into the run

    let mut build = |block: u32, written_at: u64, updated: bool| {
        let addr = BlockAddr::new(0, 0, 0, 0, block);
        dev.set_block_mode(addr, CellMode::Slc);
        let idx = g.block_index(addr);
        meta.open_block(idx, addr, BlockLevel::Work, 4, 4);
        for p in 0..4u32 {
            dev.program(Spa::new(addr.page(p), 0), 4).unwrap();
            meta.get_mut(idx)
                .unwrap()
                .note_program(p, 0, 4, written_at, updated);
        }
        // 6 invalid subpages in both candidates, as in the figure.
        for (p, s) in [(0u32, 0u8), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)] {
            dev.invalidate(Spa::new(addr.page(p), s)).unwrap();
        }
        idx
    };

    let a = build(0, now - 1_000_000, true); // hot: updated 1 ms ago
    let b = build(1, 1, false); // cold: written at t≈0, never updated

    let isr_a = isr_score(dev.block_by_index(a), meta.get(a).unwrap(), now);
    let isr_b = isr_score(dev.block_by_index(b), meta.get(b).unwrap(), now);
    println!("  candidate A (hot, updated):   ISR = {isr_a:.3}  (paper: 6/16 = 0.375)");
    println!("  candidate B (cold, aged):     ISR = {isr_b:.3}  (paper: ≈6.9/16 = 0.431)");
    println!(
        "  → GC selects candidate {} (paper selects B)\n",
        if isr_b > isr_a { "B" } else { "A" }
    );
}

fn end_to_end(scale: f64) {
    println!("— End-to-end: IPU under ISR vs greedy victim selection ({scale} scale, ts0) —");
    for (label, use_isr) in [("ISR (paper)", true), ("greedy", false)] {
        let mut cfg = ExperimentConfig::scaled(scale);
        cfg.ftl.ipu_use_isr_gc = use_isr;
        let r = experiment::run_one(&cfg, PaperTrace::Ts0, SchemeKind::Ipu);
        println!(
            "  {label:<12}: overall {:.4} ms | evicted {:>7} subpages | SLC erases {:>5} | util {:.1}%",
            r.overall_latency.mean_ms(),
            r.ftl.gc_evicted_subpages,
            r.wear.slc_erases,
            r.gc_page_utilization() * 100.0
        );
    }
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.02);
    figure4_example();
    end_to_end(scale);
}

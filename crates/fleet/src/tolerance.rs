//! The tolerance pass: replays the fleet's logical request stream against a
//! resolved [`FleetFaultPlan`] and decides, in
//! global dispatch-time order, what the router would have done about each
//! request — serve it, dilate it (fail-slow), time out and retry it on the
//! replica with capped exponential backoff, hedge it, or lose it.
//!
//! The pass is deliberately *post hoc*: every device is first replayed at
//! full fidelity (with its per-device fault seed and any fail-slow media
//! scaling), producing exact per-request timings; the fleet layer then
//! overlays availability windows and router policy on those timings. That
//! keeps the device simulation bit-identical whether or not a fault plan is
//! active — the zero-fault inertness guarantee — while the fleet-level
//! consequences (retries, hedges, losses, health transitions) stay fully
//! deterministic: no randomness enters the pass at all.
//!
//! Replica costs are a first-order estimate (the replica's observed mean
//! service time, dilated by its own fault window at retry time) rather than
//! a re-simulation: the replica's queue is not re-entered. This
//! underestimates contention on the survivor of a mirror pair, which is
//! why replica *writes* are charged inside the mirror's own replay instead
//! (see [`route_replicated`](crate::router::route_replicated)).

use ipu_host::LatencyStats;
use serde::{Deserialize, Serialize};

use crate::fault::FleetFaultPlan;
use crate::health::{DeviceHealthTimeline, HealthPolicy, HealthTracker};
use crate::router::ReplicationPolicy;

/// One logical (primary) request as the router saw it: which device served
/// it and the exact timings from that device's replay.
#[derive(Debug, Clone, Copy)]
pub struct LogicalRequest {
    /// Device the primary copy was routed to.
    pub device: usize,
    /// Arrival at the fleet, ns.
    pub arrival_ns: u64,
    /// Admission into the device queue, ns.
    pub admit_ns: u64,
    /// Dispatch to the device, ns.
    pub dispatch_ns: u64,
    /// Completion on the device, ns.
    pub completion_ns: u64,
    /// Reads are eligible for hedging; writes are not.
    pub is_read: bool,
}

/// Per-device inputs to the replica-cost estimate.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeviceProfile {
    /// Mean service latency observed in the device's own replay, ns
    /// (0 when the device served nothing — the fleet mean is used).
    pub mean_service_ns: u64,
}

/// Fleet-level reliability ledger: what happened to every logical request
/// once the fault plan and router policy are applied. Conservation holds by
/// construction and is asserted in CI:
/// `logical_ops == acked + lost` and `acked == clean + recovered`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetReliability {
    /// Logical (primary) requests processed.
    pub logical_ops: u64,
    /// Requests that completed (clean + recovered).
    pub acked: u64,
    /// Acked on the primary without a failover.
    pub clean: u64,
    /// Acked only after failing over to the replica.
    pub recovered: u64,
    /// Requests whose data was unreachable: primary unavailable and every
    /// replica retry exhausted (or no replica existed). A merely-slow
    /// primary is never lost — its late response is acked past the budget.
    pub lost: u64,
    /// Retry attempts made (including the successful ones).
    pub retries: u64,
    /// Requests ultimately served by the replica.
    pub failovers: u64,
    /// Attempts that burned the full per-request timeout budget.
    pub timeouts: u64,
    /// Hedged duplicates fired for slow reads.
    pub hedges_fired: u64,
    /// Hedges whose duplicate beat the primary.
    pub hedges_won: u64,
    /// Total cost of the losing copy of every hedge, ns — the price of the
    /// tail insurance, accounted even when the hedge loses.
    pub hedge_wasted_ns: u64,
    /// Replica write ops charged to mirrors inside their own replays.
    pub replica_write_ops: u64,
}

impl FleetReliability {
    /// Folds `other` into `self`: every ledger counter sums, so merging
    /// per-shard ledgers preserves the conservation laws documented on the
    /// struct (the `merge-complete` lint pins every field to appear here).
    pub fn merge(&mut self, other: &FleetReliability) {
        self.logical_ops += other.logical_ops;
        self.acked += other.acked;
        self.clean += other.clean;
        self.recovered += other.recovered;
        self.lost += other.lost;
        self.retries += other.retries;
        self.failovers += other.failovers;
        self.timeouts += other.timeouts;
        self.hedges_fired += other.hedges_fired;
        self.hedges_won += other.hedges_won;
        self.hedge_wasted_ns += other.hedge_wasted_ns;
        self.replica_write_ops += other.replica_write_ops;
    }

    /// `lost / logical_ops` (0 when nothing ran).
    pub fn loss_rate(&self) -> f64 {
        if self.logical_ops == 0 {
            0.0
        } else {
            self.lost as f64 / self.logical_ops as f64
        }
    }
}

/// What the tolerance pass decided: adjusted fleet-level latency
/// distributions, the reliability ledger, and per-device health timelines.
#[derive(Debug, Clone)]
pub struct ToleranceOutcome {
    /// Service latency (admit → final completion) over acked requests.
    pub service_latency: LatencyStats,
    /// End-to-end latency (arrival → final completion) over acked requests.
    pub e2e_latency: LatencyStats,
    pub reliability: FleetReliability,
    pub health: Vec<DeviceHealthTimeline>,
}

/// Runs the tolerance pass over every logical request, in global
/// dispatch-time order. `requests` is sorted in place (stably, so the
/// caller's deterministic construction order breaks ties).
pub fn run_tolerance(
    plan: &FleetFaultPlan,
    replication: ReplicationPolicy,
    policy: &HealthPolicy,
    devices: usize,
    requests: &mut [LogicalRequest],
    profiles: &[DeviceProfile],
) -> ToleranceOutcome {
    assert_eq!(profiles.len(), devices, "one profile per device");
    let horizon_ns = requests.iter().map(|r| r.completion_ns).max().unwrap_or(0);
    let resolved = plan.resolve(devices, horizon_ns);
    requests.sort_by_key(|r| r.dispatch_ns);

    // Healthy baseline: the pooled distribution the hedge threshold is
    // quoted against, before any fault window is applied.
    let mut baseline = LatencyStats::new();
    for r in requests.iter() {
        baseline.record(r.completion_ns - r.admit_ns);
    }
    let healthy_pxx = baseline.percentile_ns(policy.hedge_percentile);
    let fleet_mean_ns = (baseline.mean_ns() as u64).max(1);
    // Replica service estimate: the replica's own mean, dilated by its
    // fault window at the retry instant.
    let estimate = |device: usize, at_ns: u64| -> u64 {
        let base = match profiles[device].mean_service_ns {
            0 => fleet_mean_ns,
            m => m,
        };
        (base as f64 * resolved[device].latency_factor_at(at_ns)) as u64
    };

    let mut tracker = HealthTracker::new(devices, policy.clone());
    let mut rel = FleetReliability::default();
    let mut service = LatencyStats::new();
    let mut e2e = LatencyStats::new();

    for r in requests.iter() {
        rel.logical_ops += 1;
        let d = r.device;
        let fault = &resolved[d];
        // Fail-slow dilation applies to the on-device portion only; queue
        // wait (admit → dispatch) is the host's, not the device's.
        let device_ns = r.completion_ns - r.dispatch_ns;
        let dilation = ((fault.latency_factor_at(r.dispatch_ns) - 1.0) * device_ns as f64) as u64;
        let primary_ns = (r.completion_ns - r.admit_ns) + dilation;
        let primary_up = !fault.unavailable(r.dispatch_ns, r.completion_ns);
        let replica = replication.mirror_of(d, devices);

        let mut elapsed_ns: u64 = 0; // cost accumulated since admit
        let mut served: Option<u64> = None; // final service latency
        let mut failed_over = false;

        if tracker.should_attempt(d, r.dispatch_ns) {
            if primary_up && primary_ns <= policy.timeout_ns {
                tracker.observe_success(d, r.dispatch_ns, primary_ns);
                served = Some(primary_ns);
            } else {
                // Unavailable or too slow: the caller burns the full
                // per-request budget discovering it.
                rel.timeouts += 1;
                tracker.observe_failure(d, r.dispatch_ns);
                elapsed_ns = policy.timeout_ns;
            }
        } else {
            // Known-Dead device inside the canary cooldown: fast-fail
            // straight to the replica for the price of the re-route.
            elapsed_ns = policy.failover_penalty_ns;
        }

        // Hedging: a read that completed but crossed the pXX threshold
        // fires a duplicate to the replica; first response wins, and the
        // loser's cost is accounted either way.
        if let (Some(primary), true, Some(rep)) = (served, r.is_read, replica) {
            let threshold_ns = tracker.hedge_threshold_ns(d, healthy_pxx);
            if primary > threshold_ns {
                let fired_at = r.admit_ns + threshold_ns;
                let est = estimate(rep, fired_at);
                let rep_up = !resolved[rep].unavailable(fired_at, fired_at + est);
                if rep_up {
                    rel.hedges_fired += 1;
                    let hedged_ns = threshold_ns + policy.failover_penalty_ns + est;
                    let winner = primary.min(hedged_ns);
                    rel.hedge_wasted_ns += (primary + hedged_ns) - winner;
                    if hedged_ns < primary {
                        rel.hedges_won += 1;
                        served = Some(hedged_ns);
                    }
                }
            }
        }

        // Retry path: capped exponential backoff onto the replica until it
        // answers or the budget is spent.
        if served.is_none() {
            if let Some(rep) = replica {
                for attempt in 0..policy.max_retries {
                    rel.retries += 1;
                    elapsed_ns += policy.backoff_ns(attempt);
                    let at_ns = r.admit_ns + elapsed_ns;
                    let est = estimate(rep, at_ns);
                    let rep_up = !resolved[rep].unavailable(at_ns, at_ns + est);
                    if rep_up && tracker.should_attempt(rep, at_ns) {
                        tracker.observe_success(rep, at_ns, est);
                        elapsed_ns += policy.failover_penalty_ns + est;
                        served = Some(elapsed_ns);
                        failed_over = true;
                        break;
                    }
                    if rep_up {
                        // Tracker vetoed (replica Dead, cooling down):
                        // only the backoff was spent.
                        continue;
                    }
                    rel.timeouts += 1;
                    tracker.observe_failure(rep, at_ns);
                    elapsed_ns += policy.timeout_ns;
                }
            }
        }

        // Last resort: the primary is alive, merely slower than the budget
        // (or its replica never answered) — the router accepts the late
        // primary response when it finally lands. A request is *lost* only
        // when its data is unreachable: primary down and no replica served.
        if served.is_none() && primary_up {
            served = Some(primary_ns.max(elapsed_ns));
        }

        match served {
            Some(final_ns) => {
                rel.acked += 1;
                if failed_over {
                    rel.recovered += 1;
                    rel.failovers += 1;
                } else {
                    rel.clean += 1;
                }
                service.record(final_ns);
                e2e.record(final_ns + (r.admit_ns - r.arrival_ns));
            }
            None => rel.lost += 1,
        }
    }

    ToleranceOutcome {
        service_latency: service,
        e2e_latency: e2e,
        reliability: rel,
        health: tracker.timelines(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::DeviceFault;
    use crate::health::HealthState;

    #[test]
    fn reliability_merge_sums_every_counter() {
        let a = FleetReliability {
            logical_ops: 100,
            acked: 99,
            clean: 90,
            recovered: 9,
            lost: 1,
            retries: 12,
            failovers: 9,
            timeouts: 3,
            hedges_fired: 5,
            hedges_won: 2,
            hedge_wasted_ns: 1_000,
            replica_write_ops: 40,
        };
        let b = FleetReliability {
            logical_ops: 10,
            acked: 10,
            clean: 10,
            recovered: 0,
            lost: 0,
            retries: 1,
            failovers: 0,
            timeouts: 0,
            hedges_fired: 1,
            hedges_won: 1,
            hedge_wasted_ns: 250,
            replica_write_ops: 4,
        };
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.logical_ops, 110);
        assert_eq!(merged.acked, 109);
        assert_eq!(merged.clean, 100);
        assert_eq!(merged.recovered, 9);
        assert_eq!(merged.lost, 1);
        assert_eq!(merged.retries, 13);
        assert_eq!(merged.failovers, 9);
        assert_eq!(merged.timeouts, 3);
        assert_eq!(merged.hedges_fired, 6);
        assert_eq!(merged.hedges_won, 3);
        assert_eq!(merged.hedge_wasted_ns, 1_250);
        assert_eq!(merged.replica_write_ops, 44);
        // Conservation laws survive the merge.
        assert_eq!(merged.logical_ops, merged.acked + merged.lost);
        assert_eq!(merged.acked, merged.clean + merged.recovered);
        // Merging the default is the identity.
        let mut same = b;
        same.merge(&FleetReliability::default());
        assert_eq!(same, b);
    }

    /// `n` requests per device, dispatched `gap` apart, each taking
    /// `svc` ns of pure device time.
    fn uniform_requests(devices: usize, n: u64, gap: u64, svc: u64) -> Vec<LogicalRequest> {
        let mut out = Vec::new();
        for d in 0..devices {
            for i in 0..n {
                let t = i * gap;
                out.push(LogicalRequest {
                    device: d,
                    arrival_ns: t,
                    admit_ns: t,
                    dispatch_ns: t,
                    completion_ns: t + svc,
                    is_read: i % 2 == 0,
                });
            }
        }
        out
    }

    fn quick_policy() -> HealthPolicy {
        HealthPolicy {
            timeout_ns: 50_000,
            probe_cooldown_ns: 100_000,
            backoff_base_ns: 1_000,
            backoff_cap_ns: 8_000,
            ..HealthPolicy::default()
        }
    }

    #[test]
    fn healthy_fleet_acks_everything_cleanly() {
        let mut reqs = uniform_requests(4, 50, 10_000, 5_000);
        let profiles = vec![DeviceProfile::default(); 4];
        let out = run_tolerance(
            &FleetFaultPlan::none(),
            ReplicationPolicy::None,
            &quick_policy(),
            4,
            &mut reqs,
            &profiles,
        );
        let r = out.reliability;
        assert_eq!(r.logical_ops, 200);
        assert_eq!(r.acked, 200);
        assert_eq!(r.clean, 200);
        assert_eq!(r.lost + r.recovered + r.retries + r.timeouts, 0);
        assert_eq!(out.service_latency.count(), 200);
        // Uniform latencies: no hedge can fire (nothing beats the p99).
        assert_eq!(r.hedges_won, 0);
        assert!(out
            .health
            .iter()
            .all(|h| h.final_state == HealthState::Healthy && h.failures == 0));
    }

    #[test]
    fn fail_stop_without_replica_loses_the_tail() {
        let mut plan = FleetFaultPlan::none();
        plan.set(1, DeviceFault::FailStop { at_frac: 0.5 });
        let mut reqs = uniform_requests(2, 100, 10_000, 5_000);
        let profiles = vec![
            DeviceProfile {
                mean_service_ns: 5_000
            };
            2
        ];
        let out = run_tolerance(
            &plan,
            ReplicationPolicy::None,
            &quick_policy(),
            2,
            &mut reqs,
            &profiles,
        );
        let r = out.reliability;
        assert_eq!(r.logical_ops, 200);
        assert!(r.lost > 0, "no replica: the dead device's tail is lost");
        assert_eq!(r.logical_ops, r.acked + r.lost, "conservation");
        assert_eq!(r.recovered, 0);
        // The router noticed: device 1 ends Dead, device 0 stays Healthy.
        assert_eq!(out.health[1].final_state, HealthState::Dead);
        assert_eq!(out.health[0].final_state, HealthState::Healthy);
        // Fast-fail kicked in: only the first few failures paid the
        // timeout before the device was declared Dead.
        assert!(r.timeouts < r.lost, "fast-fail never engaged");
    }

    #[test]
    fn fail_stop_with_mirror_recovers_everything() {
        let mut plan = FleetFaultPlan::none();
        plan.set(1, DeviceFault::FailStop { at_frac: 0.5 });
        let mut reqs = uniform_requests(2, 100, 10_000, 5_000);
        let profiles = vec![
            DeviceProfile {
                mean_service_ns: 5_000
            };
            2
        ];
        let out = run_tolerance(
            &plan,
            ReplicationPolicy::MirrorPair,
            &quick_policy(),
            2,
            &mut reqs,
            &profiles,
        );
        let r = out.reliability;
        assert_eq!(r.logical_ops, 200);
        assert_eq!(r.lost, 0, "mirror pair must recover every request");
        assert_eq!(r.acked, 200);
        assert!(r.recovered > 0);
        assert_eq!(r.clean + r.recovered, r.acked, "conservation");
        assert_eq!(r.failovers, r.recovered);
        assert!(r.retries >= r.recovered);
        // Recovered requests pay the failover path: slower than a clean
        // 5 µs service, bounded by backoff + timeout + replica estimate.
        assert!(out.service_latency.percentile_ns(100.0) > 5_000);
    }

    #[test]
    fn brownout_recovers_through_the_canary() {
        let mut plan = FleetFaultPlan::none();
        plan.set(
            0,
            DeviceFault::Brownout {
                from_frac: 0.2,
                until_frac: 0.4,
            },
        );
        let mut reqs = uniform_requests(2, 200, 10_000, 5_000);
        let profiles = vec![
            DeviceProfile {
                mean_service_ns: 5_000
            };
            2
        ];
        let out = run_tolerance(
            &plan,
            ReplicationPolicy::MirrorPair,
            &quick_policy(),
            2,
            &mut reqs,
            &profiles,
        );
        // The device died during the window and a canary revived it.
        let tl = &out.health[0];
        assert!(tl.transitions.iter().any(|t| t.to == HealthState::Dead));
        assert_eq!(
            tl.final_state,
            HealthState::Healthy,
            "brownout must heal: {:?}",
            tl.transitions
        );
        assert_eq!(out.reliability.lost, 0);
        assert!(out.reliability.recovered > 0);
    }

    #[test]
    fn fail_slow_dilation_inflates_only_the_slow_device() {
        let mut plan = FleetFaultPlan::none();
        plan.set(
            0,
            DeviceFault::FailSlow {
                from_frac: 0.0,
                latency_factor: 4.0,
                fault_scale: 1.0,
            },
        );
        let mut reqs = uniform_requests(2, 50, 10_000, 5_000);
        let profiles = vec![
            DeviceProfile {
                mean_service_ns: 5_000
            };
            2
        ];
        let out = run_tolerance(
            &plan,
            ReplicationPolicy::None,
            &quick_policy(),
            2,
            &mut reqs,
            &profiles,
        );
        // Everything still acks (20 µs < the 50 µs timeout) but the pooled
        // max is the dilated 4 × 5 µs.
        assert_eq!(out.reliability.acked, 100);
        assert_eq!(out.reliability.lost, 0);
        assert_eq!(out.service_latency.percentile_ns(100.0), 20_000);
        // The slow device's EWMA carries the dilation.
        assert!(out.health[0].ewma_latency_ns >= 4 * out.health[1].ewma_latency_ns);
    }

    #[test]
    fn slow_reads_hedge_to_the_mirror_and_the_loser_is_charged() {
        // One read far beyond the p99 of an otherwise-uniform population.
        let mut reqs = uniform_requests(2, 100, 10_000, 5_000);
        reqs.push(LogicalRequest {
            device: 0,
            arrival_ns: 2_000_000,
            admit_ns: 2_000_000,
            dispatch_ns: 2_000_000,
            completion_ns: 2_000_000 + 40_000, // 8× the fleet mean
            is_read: true,
        });
        let profiles = vec![
            DeviceProfile {
                mean_service_ns: 5_000
            };
            2
        ];
        let out = run_tolerance(
            &FleetFaultPlan::none(),
            ReplicationPolicy::MirrorPair,
            &quick_policy(),
            2,
            &mut reqs,
            &profiles,
        );
        let r = out.reliability;
        assert!(r.hedges_fired >= 1, "outlier read must hedge");
        assert!(r.hedges_won >= 1, "replica estimate beats the 40 µs read");
        assert!(r.hedge_wasted_ns > 0, "loser's cost must be accounted");
        assert_eq!(r.lost, 0);
        // The hedge capped the tail below the raw 40 µs outlier.
        assert!(out.service_latency.percentile_ns(100.0) < 40_000);
    }

    #[test]
    fn tolerance_pass_is_deterministic() {
        let plan = FleetFaultPlan::fail_stop(4, 2, 0.3, 9);
        let profiles = vec![
            DeviceProfile {
                mean_service_ns: 5_000
            };
            4
        ];
        let run = || {
            let mut reqs = uniform_requests(4, 80, 7_000, 5_000);
            run_tolerance(
                &plan,
                ReplicationPolicy::MirrorPair,
                &quick_policy(),
                4,
                &mut reqs,
                &profiles,
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.reliability, b.reliability);
        assert_eq!(a.health, b.health);
        assert_eq!(
            a.service_latency.percentile_ns(99.0),
            b.service_latency.percentile_ns(99.0)
        );
    }
}

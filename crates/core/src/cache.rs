//! Content-addressed on-disk replay cache.
//!
//! A replay is a pure function of `(ReplayConfig, trace spec)`: the calibrated
//! generator is deterministic per spec and the engine has no other inputs. The
//! cache exploits that — each completed [`SimReport`] is stored under a stable
//! hash of the full input description, so re-running a figure after an
//! unrelated edit (or tweaking one cell of a sweep) skips every replay whose
//! inputs did not change.
//!
//! Safety properties:
//!
//! * **Content-addressed, collision-checked.** The file name is a 128-bit
//!   FNV-1a hash of the canonical key JSON, but the entry also stores that
//!   key JSON verbatim and a load compares it byte-for-byte — a hash
//!   collision degrades to a miss, never a wrong report.
//! * **Corruption-safe.** Unreadable, unparsable, stale-schema or
//!   mismatched-key entries are treated as misses and re-simulated; the fresh
//!   result then overwrites the bad entry. Entries are written to a temp file
//!   and renamed so a crash never leaves a torn entry under a valid name.
//! * **Versioned.** [`CACHE_SCHEMA_VERSION`] is part of the key; bump it
//!   whenever the meaning of a cached report changes (engine semantics,
//!   report shape) and every old entry silently expires.
//!
//! Counters are atomic because matrix cells run under
//! [`parallel_map`](crate::parallel::parallel_map); distinct cells hash to
//! distinct files, so concurrent writers never race on one entry within a
//! run, and the rename keeps cross-process races benign.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ipu_sim::{replay, ReplayConfig, SimReport};
use ipu_trace::{IoRequest, SyntheticTraceSpec};
use serde::{Deserialize, Serialize};

/// Bump when engine semantics or the report shape change: old entries stop
/// matching and are re-simulated on first use.
///
/// v2: replay runs on the discrete-event core and `ReplayConfig` carries the
/// event-core timing model, so pre-event-core entries are stale.
pub const CACHE_SCHEMA_VERSION: u32 = 2;

/// Everything a replay's outcome depends on, in canonical (serde_json) form.
/// Owned because the vendored `serde_derive` does not support lifetime
/// parameters; keys are built rarely (once per matrix cell).
#[derive(Serialize)]
struct CacheKey {
    schema: u32,
    replay: ReplayConfig,
    trace: SyntheticTraceSpec,
}

/// One on-disk entry: the key it was stored under (verbatim, for collision
/// detection) and the cached report.
#[derive(Serialize, Deserialize)]
struct CacheEntry {
    key: String,
    report: SimReport,
}

/// Key of a generic (non-replay) cached computation: `kind` namespaces
/// result families (e.g. `"fleet"`), `key` is the caller's input description
/// as canonical JSON. The vendored `serde_json` has no dynamic `Value`, so
/// the nested JSON travels as a string — byte-stable either way.
#[derive(Serialize)]
struct GenericKey {
    schema: u32,
    kind: String,
    key: String,
}

/// On-disk entry of a generic computation; the value is the result's JSON,
/// nested as a string for the same reason as [`GenericKey::key`].
#[derive(Serialize, Deserialize)]
struct GenericEntry {
    key: String,
    value: String,
}

/// Hit/miss counters of one cache over its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Replays served from disk.
    pub hits: u64,
    /// Replays simulated (entry absent).
    pub misses: u64,
    /// Entries found but rejected (corrupt, stale schema, or key mismatch) —
    /// counted in `misses` too.
    pub rejected: u64,
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} hits, {} misses", self.hits, self.misses)?;
        if self.rejected > 0 {
            write!(f, " ({} corrupt entries re-simulated)", self.rejected)?;
        }
        Ok(())
    }
}

/// On-disk replay cache rooted at a directory (default `.ipu-cache/`).
#[derive(Debug)]
pub struct ReplayCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
}

impl ReplayCache {
    /// The default cache location, relative to the working directory.
    pub const DEFAULT_DIR: &'static str = ".ipu-cache";

    /// A cache rooted at `dir`. The directory is created lazily on the first
    /// store, so constructing a cache never touches the filesystem.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ReplayCache {
            dir: dir.into(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// The directory entries live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Lifetime hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }

    /// Returns the cached report for `(cfg, spec)`, or replays `requests`
    /// and stores the result.
    ///
    /// `requests` must be the stream generated from `spec` — the cache trusts
    /// the caller on this (both come from the same [`TraceSet`] /
    /// [`scaled_spec`] pairing in the runners).
    ///
    /// [`TraceSet`]: crate::trace_set::TraceSet
    /// [`scaled_spec`]: crate::experiment::scaled_spec
    pub fn get_or_replay(
        &self,
        cfg: &ReplayConfig,
        spec: &SyntheticTraceSpec,
        requests: &[IoRequest],
        trace_name: &str,
    ) -> SimReport {
        let key = Self::key_json(cfg, spec);
        if let Some(report) = self.load(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return report;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let report = replay(cfg, requests, trace_name);
        self.store(&key, &report);
        report
    }

    /// Returns the cached value of an arbitrary deterministic computation,
    /// or runs `compute` and stores its result.
    ///
    /// `kind` namespaces result families sharing one cache directory;
    /// `key` must describe *every* input the computation depends on — the
    /// cache trusts the caller on completeness exactly as
    /// [`get_or_replay`](Self::get_or_replay) trusts the `spec`/`requests`
    /// pairing. All the replay-path safety properties apply: verbatim key
    /// comparison, corruption → miss + heal, schema versioning.
    pub fn get_or_compute<K, T, F>(&self, kind: &str, key: &K, compute: F) -> T
    where
        K: Serialize,
        T: Serialize + serde::de::DeserializeOwned,
        F: FnOnce() -> T,
    {
        let key_json = Self::generic_key_json(kind, key);
        if let Some(value) = self.load_generic(&key_json) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return value;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = compute();
        self.store_generic(&key_json, &value);
        value
    }

    /// Canonical key JSON for a generic computation under the current schema.
    fn generic_key_json<K: Serialize>(kind: &str, key: &K) -> String {
        serde_json::to_string(&GenericKey {
            schema: CACHE_SCHEMA_VERSION,
            kind: kind.to_string(),
            key: serde_json::to_string(key).expect("generic cache key serialization cannot fail"),
        })
        .expect("generic cache key serialization cannot fail")
    }

    /// Loads a generic entry for `key_json`, rejecting anything that does not
    /// verifiably carry that exact key or whose value no longer parses as
    /// `T` (shape drift counts as corruption).
    fn load_generic<T: serde::de::DeserializeOwned>(&self, key_json: &str) -> Option<T> {
        let text = fs::read_to_string(self.entry_path(key_json)).ok()?;
        let Ok(entry) = serde_json::from_str::<GenericEntry>(&text) else {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        if entry.key != key_json {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        match serde_json::from_str::<T>(&entry.value) {
            Ok(value) => Some(value),
            Err(_) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Best-effort store of a generic entry (same contract as `store`).
    fn store_generic<T: Serialize>(&self, key_json: &str, value: &T) {
        let Ok(value_json) = serde_json::to_string(value) else {
            return;
        };
        let entry = GenericEntry {
            key: key_json.to_string(),
            value: value_json,
        };
        let Ok(json) = serde_json::to_string(&entry) else {
            return;
        };
        if fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let path = self.entry_path(key_json);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        if fs::write(&tmp, json).is_ok() && fs::rename(&tmp, &path).is_err() {
            let _ = fs::remove_file(&tmp);
        }
    }

    /// Canonical key JSON for `(cfg, spec)` under the current schema.
    fn key_json(cfg: &ReplayConfig, spec: &SyntheticTraceSpec) -> String {
        serde_json::to_string(&CacheKey {
            schema: CACHE_SCHEMA_VERSION,
            replay: cfg.clone(),
            trace: spec.clone(),
        })
        .expect("replay cache key serialization cannot fail")
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        // Two FNV-1a 64-bit passes with distinct offset bases give a stable
        // 128-bit name without pulling in a hash dependency.
        let name = format!(
            "{:016x}{:016x}.json",
            fnv1a(key.as_bytes(), 0xcbf2_9ce4_8422_2325),
            fnv1a(key.as_bytes(), 0x6c62_272e_07bb_0142)
        );
        self.dir.join(name)
    }

    /// Loads the entry for `key`, rejecting anything that does not verifiably
    /// carry that exact key.
    fn load(&self, key: &str) -> Option<SimReport> {
        let text = fs::read_to_string(self.entry_path(key)).ok()?;
        let reject = |_| {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            None::<CacheEntry>
        };
        let entry = serde_json::from_str::<CacheEntry>(&text).map_or_else(reject, Some)?;
        if entry.key != key {
            // Hash collision or hand-edited entry: not ours.
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        Some(entry.report)
    }

    /// Best-effort store: cache-write failures (read-only dir, disk full)
    /// must never fail the experiment that produced the report.
    fn store(&self, key: &str, report: &SimReport) {
        let entry = CacheEntry {
            key: key.to_string(),
            report: report.clone(),
        };
        let Ok(json) = serde_json::to_string(&entry) else {
            return;
        };
        if fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let path = self.entry_path(key);
        // Unique temp name per writer so concurrent processes never interleave
        // writes; rename makes the entry appear atomically.
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        if fs::write(&tmp, json).is_ok() && fs::rename(&tmp, &path).is_err() {
            let _ = fs::remove_file(&tmp);
        }
    }
}

/// FNV-1a over `bytes` from the given offset basis.
fn fnv1a(bytes: &[u8], basis: u64) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    bytes
        .iter()
        .fold(basis, |h, &b| (h ^ u64::from(b)).wrapping_mul(PRIME))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;
    use crate::experiment::{generate_trace, scaled_spec};
    use ipu_ftl::SchemeKind;
    use ipu_trace::PaperTrace;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ipu-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_inputs() -> (ReplayConfig, SyntheticTraceSpec, Vec<IoRequest>) {
        let mut cfg = ExperimentConfig::scaled(0.002);
        cfg.traces = vec![PaperTrace::Ts0];
        let spec = scaled_spec(&cfg, PaperTrace::Ts0);
        let requests = generate_trace(&cfg, PaperTrace::Ts0);
        (cfg.replay_config(SchemeKind::Ipu), spec, requests)
    }

    fn to_json(r: &SimReport) -> String {
        serde_json::to_string(r).unwrap()
    }

    #[test]
    fn round_trip_hit_is_bit_identical_and_config_change_misses() {
        let dir = tmp_dir("roundtrip");
        let cache = ReplayCache::new(&dir);
        let (cfg, spec, requests) = small_inputs();

        let first = cache.get_or_replay(&cfg, &spec, &requests, "ts0");
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                misses: 1,
                rejected: 0
            }
        );

        // Same inputs: served from disk, bit-identical under serialization.
        let second = cache.get_or_replay(&cfg, &spec, &requests, "ts0");
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(to_json(&first), to_json(&second));

        // Any config change is a different key → miss.
        let mut other = cfg.clone();
        other.scheme = SchemeKind::Baseline;
        let third = cache.get_or_replay(&other, &spec, &requests, "ts0");
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 2,
                rejected: 0
            }
        );
        assert_ne!(to_json(&first), to_json(&third));

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_rejected_and_healed() {
        let dir = tmp_dir("corrupt");
        let cache = ReplayCache::new(&dir);
        let (cfg, spec, requests) = small_inputs();

        let first = cache.get_or_replay(&cfg, &spec, &requests, "ts0");
        let path = cache.entry_path(&ReplayCache::key_json(&cfg, &spec));
        assert!(path.exists(), "entry must land at its content address");

        // Truncated JSON → rejected, re-simulated, entry healed.
        fs::write(&path, "{\"key\": \"trunc").unwrap();
        let healed = cache.get_or_replay(&cfg, &spec, &requests, "ts0");
        assert_eq!(to_json(&first), to_json(&healed));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.rejected), (0, 2, 1));

        // The heal rewrote a loadable entry.
        let again = cache.get_or_replay(&cfg, &spec, &requests, "ts0");
        assert_eq!(to_json(&first), to_json(&again));
        assert_eq!(cache.stats().hits, 1);

        // A valid entry stored under the wrong key (hash collision stand-in)
        // is rejected by the key comparison.
        let mut entry: CacheEntry =
            serde_json::from_str(&fs::read_to_string(&path).unwrap()).unwrap();
        entry.key = "someone else's key".to_string();
        fs::write(&path, serde_json::to_string(&entry).unwrap()).unwrap();
        let _ = cache.get_or_replay(&cfg, &spec, &requests, "ts0");
        assert_eq!(cache.stats().rejected, 2);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_directory_degrades_to_simulation() {
        // A file where the cache dir should be: create_dir_all fails, every
        // lookup misses, and the experiment still completes.
        let dir = tmp_dir("unwritable");
        fs::create_dir_all(dir.parent().unwrap()).ok();
        fs::write(&dir, "not a directory").unwrap();
        let cache = ReplayCache::new(&dir);
        let (cfg, spec, requests) = small_inputs();
        let a = cache.get_or_replay(&cfg, &spec, &requests, "ts0");
        let b = cache.get_or_replay(&cfg, &spec, &requests, "ts0");
        assert_eq!(to_json(&a), to_json(&b));
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 2);
        let _ = fs::remove_file(&dir);
    }

    #[test]
    fn schema_version_is_part_of_the_key() {
        let (cfg, spec, _) = small_inputs();
        let key = ReplayCache::key_json(&cfg, &spec);
        assert!(key.contains(&format!("\"schema\":{CACHE_SCHEMA_VERSION}")));
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Fake {
        label: String,
        values: Vec<u64>,
    }

    #[test]
    fn generic_entries_round_trip_and_count_hits() {
        let dir = tmp_dir("generic");
        let cache = ReplayCache::new(&dir);
        let make = || Fake {
            label: "fleet".into(),
            values: vec![1, 2, 3],
        };

        let first: Fake = cache.get_or_compute("fleet", &("ts0", 64u64), make);
        assert_eq!(cache.stats().misses, 1);

        // Warm lookup: compute must NOT run again.
        let second: Fake = cache.get_or_compute("fleet", &("ts0", 64u64), || {
            panic!("hit path must not recompute")
        });
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(first, second);

        // A different key or a different kind is a distinct entry.
        let _: Fake = cache.get_or_compute("fleet", &("ts0", 65u64), make);
        let _: Fake = cache.get_or_compute("capacity", &("ts0", 64u64), make);
        assert_eq!(cache.stats().misses, 3);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn generic_entry_with_unparsable_value_is_rejected() {
        let dir = tmp_dir("generic-drift");
        let cache = ReplayCache::new(&dir);
        let make = || Fake {
            label: "x".into(),
            values: vec![7],
        };
        let _: Fake = cache.get_or_compute("fleet", &1u64, make);

        // Corrupt the nested value JSON: shape drift must read as a miss.
        let key_json = ReplayCache::generic_key_json("fleet", &1u64);
        let path = cache.entry_path(&key_json);
        let mut entry: GenericEntry =
            serde_json::from_str(&fs::read_to_string(&path).unwrap()).unwrap();
        entry.value = "{\"other\":true}".to_string();
        fs::write(&path, serde_json::to_string(&entry).unwrap()).unwrap();

        let healed: Fake = cache.get_or_compute("fleet", &1u64, make);
        assert_eq!(healed, make());
        assert_eq!(cache.stats().rejected, 1);
        let _: Fake = cache.get_or_compute("fleet", &1u64, || panic!("healed entry must hit"));
        let _ = fs::remove_dir_all(&dir);
    }
}

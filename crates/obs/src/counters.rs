//! Monotonic counter snapshots with diffing.
//!
//! A [`CounterSnapshot`] is a named set of monotonic counter values captured
//! at one instant — e.g. the summed `FtlStats` fields before and after a
//! profiled replay. [`CounterSnapshot::diff`] turns two snapshots into the
//! per-counter deltas for the interval, flagging any counter that moved
//! backwards (a monotonicity violation worth failing a perf gate over).

use serde::{Deserialize, Serialize};

/// Named monotonic counters captured at one instant. Names are kept sorted
/// and unique so snapshots serialize deterministically.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    counters: Vec<(String, u64)>,
}

/// One counter's movement between two snapshots.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterDelta {
    pub name: String,
    pub earlier: u64,
    pub later: u64,
    /// `later - earlier`; negative iff the counter regressed.
    pub delta: i64,
}

impl CounterSnapshot {
    pub fn new() -> Self {
        CounterSnapshot::default()
    }

    /// Sets counter `name` to `value`, replacing any existing entry.
    pub fn set(&mut self, name: &str, value: u64) -> &mut Self {
        match self
            .counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
        {
            // ipu-lint: allow(panic-reachability) — index is the Ok value of binary_search on this same vec, in bounds by contract
            Ok(i) => self.counters[i].1 = value,
            Err(i) => self.counters.insert(i, (name.to_string(), value)),
        }
        self
    }

    /// The value of counter `name`, if present.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// All `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(n, v)| (n.as_str(), *v))
    }

    pub fn len(&self) -> usize {
        self.counters.len()
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Per-counter movement since `earlier`. Counters present in only one
    /// snapshot are treated as 0 in the other (a counter appearing later is
    /// growth from zero; one that vanished reads as a regression to zero).
    pub fn diff(&self, earlier: &CounterSnapshot) -> Vec<CounterDelta> {
        let mut names: Vec<&str> = self
            .iter()
            .map(|(n, _)| n)
            .chain(earlier.iter().map(|(n, _)| n))
            .collect();
        names.sort_unstable();
        names.dedup();
        names
            .into_iter()
            .filter_map(|name| {
                let e = earlier.get(name).unwrap_or(0);
                let l = self.get(name).unwrap_or(0);
                (e != l).then(|| CounterDelta {
                    name: name.to_string(),
                    earlier: e,
                    later: l,
                    delta: l as i64 - e as i64,
                })
            })
            .collect()
    }

    /// True iff no counter moved backwards since `earlier`.
    pub fn is_monotonic_since(&self, earlier: &CounterSnapshot) -> bool {
        self.diff(earlier).iter().all(|d| d.delta >= 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(pairs: &[(&str, u64)]) -> CounterSnapshot {
        let mut s = CounterSnapshot::new();
        for (n, v) in pairs {
            s.set(n, *v);
        }
        s
    }

    #[test]
    fn set_get_keeps_sorted_unique_names() {
        let mut s = snap(&[("zeta", 1), ("alpha", 2), ("mid", 3)]);
        assert_eq!(s.get("alpha"), Some(2));
        assert_eq!(s.get("nosuch"), None);
        s.set("alpha", 9);
        assert_eq!(s.len(), 3, "set replaces, never duplicates");
        assert_eq!(s.get("alpha"), Some(9));
        let names: Vec<&str> = s.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn diff_reports_only_moved_counters() {
        let a = snap(&[("reads", 10), ("writes", 5), ("steady", 7)]);
        let b = snap(&[("reads", 25), ("writes", 5), ("steady", 7), ("gc", 2)]);
        let d = b.diff(&a);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].name, "gc");
        assert_eq!((d[0].earlier, d[0].later, d[0].delta), (0, 2, 2));
        assert_eq!(d[1].name, "reads");
        assert_eq!(d[1].delta, 15);
        assert!(b.is_monotonic_since(&a));
        // Empty diff against itself.
        assert!(b.diff(&b).is_empty());
    }

    #[test]
    fn backwards_movement_is_flagged() {
        let a = snap(&[("reads", 10)]);
        let b = snap(&[("reads", 4)]);
        let d = b.diff(&a);
        assert_eq!(d[0].delta, -6);
        assert!(!b.is_monotonic_since(&a));
        // A vanished counter also reads as a regression to zero.
        let c = snap(&[]);
        assert!(!c.is_monotonic_since(&a));
        assert!(a.is_monotonic_since(&c));
    }

    #[test]
    fn snapshot_serializes_round_trip() {
        let s = snap(&[("a", 1), ("b", u64::MAX)]);
        let json = serde_json::to_string(&s).unwrap();
        let back: CounterSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}

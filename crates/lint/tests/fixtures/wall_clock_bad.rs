//! Fixture: R2 (no-wall-clock) violations, linted as if in `crates/sim`.

pub fn bad_wall_clock() -> bool {
    let begin = std::time::SystemTime::now();
    begin.elapsed().is_ok()
}

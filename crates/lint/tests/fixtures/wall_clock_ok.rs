//! Fixture: R2-conforming code — time only ever comes from the simulation.

pub fn ok_sim_time(now_ns: u64, dt_ns: u64) -> u64 {
    now_ns.saturating_add(dt_ns)
}

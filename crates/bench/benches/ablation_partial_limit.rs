//! `cargo bench -p ipu-bench --bench ablation_partial_limit`
//!
//! Ablation A3 (DESIGN.md): sensitivity to the manufacturer NOP limit — the
//! maximum number of partial programs per SLC page, which the paper (and the
//! cited datasheets) fix at 4. A limit of 1 disables partial programming
//! entirely (IPU and MGA degenerate toward Baseline's fragmentation).

use ipu_core::experiment;
use ipu_core::ftl::SchemeKind;
use ipu_core::report::TextTable;
use ipu_core::trace::PaperTrace;

fn main() {
    let base = ipu_bench::bench_config();
    let traces = [PaperTrace::Ts0, PaperTrace::Lun1];
    let mut table = TextTable::new(&[
        "Trace",
        "Scheme",
        "NOP limit",
        "overall(ms)",
        "read err",
        "GC page util",
        "SLC erases",
    ]);
    for trace in traces {
        for scheme in [SchemeKind::Mga, SchemeKind::Ipu] {
            for limit in [1u8, 2, 4] {
                let mut cfg = base.clone();
                cfg.device.max_partial_programs = limit;
                let r = experiment::run_one(&cfg, trace, scheme);
                table.row(vec![
                    trace.name().to_string(),
                    scheme.label().to_string(),
                    limit.to_string(),
                    format!("{:.4}", r.overall_latency.mean_ms()),
                    format!("{:.3e}", r.read_error_rate()),
                    format!("{:.1}%", r.gc_page_utilization() * 100.0),
                    r.wear.slc_erases.to_string(),
                ]);
            }
        }
    }
    println!("Ablation A3 — partial-program (NOP) budget sensitivity");
    println!("{}", table.render());
}

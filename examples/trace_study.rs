//! Trace study: regenerate the paper's Tables 1 and 3 from the calibrated
//! synthetic traces — or from a real MSR-format trace file if you have one.
//!
//! ```text
//! cargo run --release --example trace_study                 # all six synthetic traces (2% scale)
//! cargo run --release --example trace_study -- 0.1          # 10% scale
//! cargo run --release --example trace_study -- /path/to/ts0.csv   # a real MSR trace
//! ```

use std::fs::File;
use std::io::BufReader;

use ipu_core::trace::{parse_msr_reader, TraceAnalysis, TraceStats};
use ipu_core::{experiment, report, ExperimentConfig};

fn main() {
    let arg = std::env::args().nth(1);

    // A path argument switches to real-trace mode.
    if let Some(path) = arg.as_deref().filter(|a| a.parse::<f64>().is_err()) {
        let file = File::open(path).unwrap_or_else(|e| panic!("cannot open {path}: {e}"));
        let requests = parse_msr_reader(BufReader::new(file))
            .unwrap_or_else(|e| panic!("cannot parse {path}: {e}"));
        let stats = TraceStats::compute(&requests);
        println!("MSR trace {path}: {} requests", stats.requests);
        println!("  write ratio        : {:.1}%", stats.write_ratio * 100.0);
        println!(
            "  avg write size     : {:.1} KB",
            stats.avg_write_size / 1024.0
        );
        println!(
            "  hot write ratio    : {:.1}%",
            stats.hot_write_ratio * 100.0
        );
        println!("  update ratio       : {:.1}%", stats.update_ratio * 100.0);
        println!(
            "  update sizes       : ≤4K {:.1}%  4–8K {:.1}%  >8K {:.1}%",
            stats.update_sizes.up_to_4k * 100.0,
            stats.update_sizes.up_to_8k * 100.0,
            stats.update_sizes.over_8k * 100.0
        );
        println!(
            "  written footprint  : {:.2} GiB",
            stats.written_footprint_bytes() as f64 / (1u64 << 30) as f64
        );
        let analysis = TraceAnalysis::compute(&requests);
        println!(
            "  rewrite fraction   : {:.1}%",
            analysis.rewrite_fraction * 100.0
        );
        println!(
            "  interarrival CoV   : {:.2} (1.0 = Poisson)",
            analysis.interarrival_cov
        );
        println!(
            "  update reuse dist  : p50 ≈ {} writes, p95 ≈ {} writes",
            analysis.update_reuse_distance.quantile(0.5),
            analysis.update_reuse_distance.quantile(0.95)
        );
        return;
    }

    let scale: f64 = arg.and_then(|s| s.parse().ok()).unwrap_or(0.02);
    let cfg = ExperimentConfig::scaled(scale);
    eprintln!("computing Tables 1 & 3 over all six calibrated traces at scale {scale} ...");
    let rows = experiment::run_trace_tables(&cfg);
    println!("{}", report::render_table1(&rows));
    println!("{}", report::render_table3(&rows));

    // Workload-shape summary per trace: the quantities that drive the
    // paper's mechanisms (reuse distance → intra-page update hit rate;
    // burstiness → bypass pressure).
    println!("Workload shape (calibrated synthetic traces)");
    for &trace in &cfg.traces {
        let requests = experiment::generate_trace(&cfg, trace);
        let a = TraceAnalysis::compute(&requests);
        println!(
            "  {:<6} rewrites {:>5.1}%  reuse p50 {:>6} writes  CoV {:.2}  WSS {:>8}",
            trace.name(),
            a.rewrite_fraction * 100.0,
            a.update_reuse_distance.quantile(0.5),
            a.interarrival_cov,
            a.final_working_set()
        );
    }
}

//! End-to-end integration: the MSR parser feeding the simulator, unmapped
//! reads, burst behaviour (bypass) and cross-layer accounting consistency.

use ipu_core::flash::SubpageState;
use ipu_core::ftl::SchemeKind;
use ipu_core::sim::{replay, ReplayConfig};
use ipu_core::trace::{parse_msr_reader, IoRequest, OpKind};
use ipu_core::ExperimentConfig;

/// Builds an MSR-format CSV exercising writes, updates and reads.
fn synthetic_msr_csv() -> String {
    let mut out = String::from("Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n");
    let base: u64 = 130_000_000_000_000_000;
    let mut t = base;
    // 60 writes over 12 slots (5 versions each), then read everything back.
    for round in 0..5u64 {
        for slot in 0..12u64 {
            t += 2_000_000; // 200 ms in FILETIME ticks
            out.push_str(&format!("{t},srv,0,Write,{},4096,100\n", slot * 65536));
            let _ = round;
        }
    }
    for slot in 0..12u64 {
        t += 2_000_000;
        out.push_str(&format!("{t},srv,0,Read,{},4096,100\n", slot * 65536));
    }
    // One read of an address never written (pre-trace data).
    t += 2_000_000;
    out.push_str(&format!("{t},srv,0,Read,{},8192,100\n", 1u64 << 32));
    out
}

#[test]
fn msr_csv_replays_through_every_scheme() {
    let csv = synthetic_msr_csv();
    let requests = parse_msr_reader(csv.as_bytes()).unwrap();
    assert_eq!(requests.len(), 73);
    assert_eq!(requests[0].timestamp_ns, 0);

    for kind in SchemeKind::all() {
        let cfg = ReplayConfig::small_for_tests(kind);
        let report = replay(&cfg, &requests, "synthetic-msr");
        assert_eq!(report.requests, 73, "{kind}");
        assert_eq!(report.ftl.host_write_requests, 60, "{kind}");
        assert_eq!(report.ftl.host_read_requests, 13, "{kind}");
        // The never-written address is charged as MLC-resident data.
        assert_eq!(report.ftl.unmapped_reads, 1, "{kind}");
        // 12 mapped single-subpage reads + 2 unmapped subpages.
        assert_eq!(report.ftl.host_subpages_read, 14, "{kind}");
        assert!(report.read_error_rate() > 0.0);
    }
}

#[test]
fn ipu_keeps_update_chains_intra_page_in_msr_replay() {
    let csv = synthetic_msr_csv();
    let requests = parse_msr_reader(csv.as_bytes()).unwrap();
    // The default test geometry has only 2 SLC blocks; give the cache room so
    // first-writes stay in SLC and updates can land intra-page.
    let mut cfg = ReplayConfig::small_for_tests(SchemeKind::Ipu);
    cfg.ftl.slc_ratio = 0.5;
    let report = replay(&cfg, &requests, "synthetic-msr");
    // 12 slots × 5 writes: first write new, then 3 intra-page updates fill
    // the page, the 5th upgrades. (GC on the tiny device may interleave, so
    // allow a tolerance band.)
    assert!(
        report.ftl.intra_page_updates >= 24,
        "expected many intra-page updates, got {}",
        report.ftl.intra_page_updates
    );
    assert!(
        report.ftl.upgraded_writes >= 6,
        "upgrades missing: {}",
        report.ftl.upgraded_writes
    );
}

#[test]
fn burst_arrivals_drain_the_pool_and_trigger_the_bypass() {
    // All writes arrive nearly simultaneously: GC replenishment (rate-limited
    // by the 10 ms erase) cannot keep up, so some host writes must complete
    // in the MLC region. Unique addresses keep intra-page updates out of the
    // picture.
    let burst: Vec<IoRequest> = (0..150)
        .map(|i| IoRequest::new(i * 1_000, OpKind::Write, i * 65536, 16384))
        .collect();
    let cfg = ReplayConfig::small_for_tests(SchemeKind::Baseline);
    let report = replay(&cfg, &burst, "burst");
    assert!(
        report.ftl.host_subpages_to_mlc > 0,
        "burst must overflow the tiny cache into MLC (slc={}, mlc={})",
        report.ftl.host_subpages_to_slc,
        report.ftl.host_subpages_to_mlc
    );
    // The same workload spread over seconds stays (mostly) in the cache... it
    // still exceeds the tiny cache, but the SLC share must improve.
    let spaced: Vec<IoRequest> = (0..150)
        .map(|i| IoRequest::new(i * 20_000_000, OpKind::Write, i * 65536, 16384))
        .collect();
    let relaxed = replay(&cfg, &spaced, "spaced");
    let share = |r: &ipu_core::sim::SimReport| {
        r.ftl.host_subpages_to_mlc as f64
            / (r.ftl.host_subpages_to_slc + r.ftl.host_subpages_to_mlc).max(1) as f64
    };
    assert!(
        share(&relaxed) < share(&report),
        "spacing arrivals must reduce the bypass share ({} vs {})",
        share(&relaxed),
        share(&report)
    );
}

#[test]
fn device_state_matches_mapping_after_heavy_churn() {
    // Cross-layer consistency at the end of a churny replay: every mapped LSN
    // points at a physically-valid subpage owned by that LSN.
    let mut requests = Vec::new();
    let mut t = 0u64;
    for round in 0..30u64 {
        for slot in 0..8u64 {
            t += 300_000;
            let size = if (round + slot) % 3 == 0 { 8192 } else { 4096 };
            requests.push(IoRequest::new(t, OpKind::Write, slot * 65536, size));
        }
    }
    // Direct FTL drive (not the engine) so we can inspect the final state.
    let mut dev =
        ipu_core::flash::FlashDevice::new(ipu_core::flash::DeviceConfig::small_for_tests());
    let mut ftl = SchemeKind::Ipu.build(&mut dev, ipu_core::ftl::FtlConfig::default());
    for r in &requests {
        ftl.on_write(r, r.timestamp_ns, &mut dev);
    }
    let core = ftl.core();
    assert!(!core.map.is_empty());
    for (lsn, spa) in core.map.iter() {
        let page = dev.block(spa.ppa.block_addr()).page(spa.ppa.page);
        assert_eq!(
            page.subpage(spa.subpage),
            SubpageState::Valid,
            "lsn {lsn} stale"
        );
        let bi = core.block_idx(spa.ppa.block_addr());
        assert_eq!(core.owners.owner(bi, spa), Some(lsn));
    }
    // The consolidated checker agrees.
    core.check_invariants(&dev)
        .expect("invariant violation after churn");
}

#[test]
fn invariants_hold_for_every_scheme_under_mixed_io() {
    for kind in ipu_core::ftl::SchemeKind::all_extended() {
        let mut dev =
            ipu_core::flash::FlashDevice::new(ipu_core::flash::DeviceConfig::small_for_tests());
        let mut ftl = kind.build(&mut dev, ipu_core::ftl::FtlConfig::default());
        let mut t = 0u64;
        for round in 0..25u64 {
            for slot in 0..6u64 {
                t += 400_000;
                let req = IoRequest::new(
                    t,
                    if (round + slot) % 4 == 0 {
                        OpKind::Read
                    } else {
                        OpKind::Write
                    },
                    slot * 65536,
                    4096 * (1 + (slot % 3) as u32),
                );
                match req.op {
                    OpKind::Write => ftl.on_write(&req, t, &mut dev),
                    OpKind::Read => ftl.on_read(&req, t, &mut dev),
                };
            }
        }
        ftl.core()
            .check_invariants(&dev)
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
    }
}

#[test]
fn scaled_experiment_config_preserves_cache_pressure_ratio() {
    // The writes-to-cache ratio at 2% scale must match the ratio at 4% scale
    // (both scale linearly), which is what makes scaled runs representative.
    let ratio = |scale: f64| {
        let cfg = ExperimentConfig::scaled(scale);
        let spec = ipu_core::trace::paper_trace(ipu_core::trace::PaperTrace::Ts0)
            .with_requests((1_801_734.0 * scale) as u64);
        let write_bytes = spec.expected_writes() as f64 * 8.0 * 1024.0;
        let ftl = ipu_core::ftl::FtlConfig::default();
        let slc_blocks = ftl.slc_blocks_per_plane(cfg.device.geometry.blocks_per_plane) as f64
            * cfg.device.geometry.total_planes() as f64;
        let cache_bytes = slc_blocks
            * cfg.device.geometry.pages_per_block_slc as f64
            * cfg.device.geometry.page_size as f64;
        write_bytes / cache_bytes
    };
    let r2 = ratio(0.1);
    let r4 = ratio(0.2);
    assert!(
        (r2 / r4 - 1.0).abs() < 0.25,
        "pressure ratio drifts with scale: {r2:.2} vs {r4:.2}"
    );
    // And there is real pressure (multiple cache turnovers).
    assert!(
        r2 > 2.0,
        "scaled runs must still pressure the cache (ratio {r2:.2})"
    );
}

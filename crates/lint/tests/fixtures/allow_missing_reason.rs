//! Fixture: an allow comment with no reason — it must not suppress anything
//! and must itself be reported.

pub struct Fixture;

impl FtlScheme for Fixture {
    fn unsuppressed_unwrap(&mut self, v: Option<u32>) -> u32 {
        // ipu-lint: allow(panic-reachability)
        v.unwrap()
    }
}

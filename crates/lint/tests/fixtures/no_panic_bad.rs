//! Fixture: R1 (no-panic) violations, linted as if it lived in `crates/ftl`.

pub fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn bad_expect(v: Option<u32>) -> u32 {
    v.expect("must exist")
}

pub fn bad_macros(x: u32) -> u32 {
    if x > 3 {
        panic!("boom");
    }
    unreachable!()
}

pub fn bad_index_in_match(v: &[u32], flag: bool) -> u32 {
    match flag {
        true => v[0],
        false => 0,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1u32).unwrap();
    }
}

//! Fixture: an allow comment with no reason — it must not suppress anything
//! and must itself be reported.

pub fn unsuppressed_unwrap(v: Option<u32>) -> u32 {
    // ipu-lint: allow(no-panic)
    v.unwrap()
}

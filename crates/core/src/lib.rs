//! # ipu-core — public API of the IPU paper reproduction
//!
//! End-to-end reproduction of *"Intra-page Cache Update in SLC-mode with
//! Partial Programming in High Density SSDs"* (ICPP 2021): configure an
//! experiment, run the trace × scheme evaluation matrix on the simulated
//! device, and render the paper's tables and figures.
//!
//! ```
//! use ipu_core::{ExperimentConfig, experiment, report};
//! use ipu_ftl::SchemeKind;
//! use ipu_trace::PaperTrace;
//!
//! // A miniature run: 0.2% of ts0 under all three schemes.
//! let mut cfg = ExperimentConfig::scaled(0.002);
//! cfg.traces = vec![PaperTrace::Ts0];
//! cfg.schemes = SchemeKind::all().to_vec();
//! let matrix = experiment::run_main_matrix(&cfg);
//! println!("{}", report::render_fig5(&matrix));
//! ```

#![forbid(unsafe_code)]

pub mod cache;
pub mod charts;
pub mod config;
pub mod experiment;
pub mod parallel;
pub mod profile;
pub mod qd_sweep;
pub mod report;
pub mod results;
pub mod scorecard;
pub mod svg;
pub mod trace_set;

pub use cache::{CacheStats, ReplayCache, CACHE_SCHEMA_VERSION};
pub use charts::{chart_matrix, BarChart};
pub use config::ExperimentConfig;
pub use experiment::{
    run_ber_curve, run_main_matrix, run_main_matrix_with, run_matrix, run_matrix_with, run_one,
    run_one_with, run_pe_sweep, run_pe_sweep_with, run_trace_tables, run_trace_tables_with,
    scaled_spec, MatrixResult, PeSweepResult, PAPER_PE_POINTS,
};
pub use parallel::{default_threads, parallel_map};
pub use profile::{run_profile, BenchProfile, PhaseWall, RunProfile, BENCH_SCHEMA_VERSION};
pub use qd_sweep::{
    run_qd_sweep, run_qd_sweep_with, QdSweepHostSpec, QdSweepResult, PAPER_QD_POINTS,
};
pub use results::ExperimentRecord;
pub use scorecard::{evaluate as evaluate_scorecard, ClaimResult, Outcome};
pub use svg::{write_figures, GroupedBars, HeatStrip, LineChart};
pub use trace_set::TraceSet;

// Re-export the layer crates so downstream users need only one dependency.
pub use ipu_flash as flash;
pub use ipu_ftl as ftl;
pub use ipu_host as host;
pub use ipu_obs as obs;
pub use ipu_sim as sim;
pub use ipu_trace as trace;

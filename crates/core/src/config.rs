//! Experiment configuration: which traces, schemes and scale to run at.

use ipu_flash::DeviceConfig;
use ipu_ftl::{FtlConfig, SchemeKind};
use ipu_trace::PaperTrace;
use serde::{Deserialize, Serialize};

/// Configuration of a paper-reproduction experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Device model (Table 2). `initial_pe_cycles` is the §4.5 sweep knob.
    #[serde(default)]
    pub device: DeviceConfig,
    /// FTL policy parameters.
    #[serde(default)]
    pub ftl: FtlConfig,
    /// Fraction of each trace's published request count to replay (1.0 = the
    /// full Table 3 counts; smaller values keep the calibrated ratios).
    ///
    /// Serde default 0.0 fails [`ExperimentConfig::validate`] loudly rather
    /// than silently running the full paper scale.
    #[serde(default)]
    pub scale: f64,
    /// Traces to run, in report order. Serde default is the empty list, which
    /// fails [`ExperimentConfig::validate`].
    #[serde(default)]
    pub traces: Vec<PaperTrace>,
    /// Schemes to compare, in report order. Serde default is the empty list,
    /// which fails [`ExperimentConfig::validate`].
    #[serde(default)]
    pub schemes: Vec<SchemeKind>,
    /// Worker threads for trace×scheme sweeps (0 = auto).
    #[serde(default)]
    pub threads: usize,
    /// Event-core timing model (GC preemption, read suspension). The default
    /// reproduces the legacy inline-engine timeline bit-for-bit.
    #[serde(default)]
    pub timing: ipu_sim::TimingConfig,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            device: DeviceConfig::paper_scale(),
            ftl: FtlConfig::default(),
            scale: 1.0,
            traces: PaperTrace::all().to_vec(),
            schemes: SchemeKind::all().to_vec(),
            threads: 0,
            timing: ipu_sim::TimingConfig::default(),
        }
    }
}

impl ExperimentConfig {
    /// Full paper-scale run: every trace, every scheme, published counts.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Scaled-down run preserving all calibrated ratios. Benches default to
    /// this via the `IPU_BENCH_SCALE` environment variable.
    ///
    /// Both the request counts *and* the device (blocks per plane, hence the
    /// SLC cache size) scale together, so the writes-to-cache-capacity ratio —
    /// what determines GC pressure and hot/cold separation behaviour — matches
    /// the full paper-scale run.
    pub fn scaled(scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale {scale} out of (0,1]");
        let mut cfg = ExperimentConfig {
            scale,
            ..Self::default()
        };
        cfg.device.geometry.blocks_per_plane = ((1024.0 * scale).round() as u32).clamp(16, 1024);
        cfg
    }

    /// Reads the run scale from `IPU_BENCH_SCALE` (default `default_scale`).
    pub fn from_env(default_scale: f64) -> Self {
        let scale = std::env::var("IPU_BENCH_SCALE")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(default_scale)
            .clamp(0.0005, 1.0);
        let mut cfg = Self::scaled(scale);
        if let Some(threads) = std::env::var("IPU_BENCH_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
        {
            cfg.threads = threads;
        }
        cfg
    }

    /// Copy with a different pre-aged P/E cycle count (the §4.5 sweep).
    pub fn with_pe_cycles(&self, pe: u32) -> Self {
        let mut cfg = self.clone();
        cfg.device.initial_pe_cycles = pe;
        cfg
    }

    /// The replay-engine configuration this experiment uses for `scheme` —
    /// the replay-relevant subset (device, FTL, scheme, timing model) that
    /// also keys the on-disk replay cache.
    pub fn replay_config(&self, scheme: SchemeKind) -> ipu_sim::ReplayConfig {
        ipu_sim::ReplayConfig {
            device: self.device.clone(),
            ftl: self.ftl.clone(),
            scheme,
            timing: self.timing,
        }
    }

    /// Worker thread count to use.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            crate::parallel::default_threads()
        } else {
            self.threads
        }
    }

    /// Validates the composite configuration.
    pub fn validate(&self) -> Result<(), String> {
        self.device.validate()?;
        self.ftl.validate()?;
        if !(self.scale > 0.0 && self.scale <= 1.0) {
            return Err(format!("scale {} out of (0,1]", self.scale));
        }
        if self.traces.is_empty() || self.schemes.is_empty() {
            return Err("need at least one trace and one scheme".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_validates() {
        let c = ExperimentConfig::paper();
        c.validate().unwrap();
        assert_eq!(c.traces.len(), 6);
        assert_eq!(c.schemes.len(), 3);
        assert_eq!(c.device.initial_pe_cycles, 4000);
    }

    #[test]
    fn pe_sweep_only_changes_aging() {
        let base = ExperimentConfig::paper();
        let aged = base.with_pe_cycles(8000);
        assert_eq!(aged.device.initial_pe_cycles, 8000);
        assert_eq!(aged.device.geometry, base.device.geometry);
        assert_eq!(aged.scale, base.scale);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn zero_scale_rejected() {
        ExperimentConfig::scaled(0.0);
    }

    #[test]
    fn validation_catches_empty_sweeps() {
        let mut c = ExperimentConfig::paper();
        c.traces.clear();
        assert!(c.validate().is_err());
    }
}

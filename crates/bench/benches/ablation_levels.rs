//! `cargo bench -p ipu-bench --bench ablation_levels`
//!
//! Ablation A1 (DESIGN.md): sensitivity of IPU to the number of SLC cache
//! levels. The paper uses three (Work/Monitor/Hot); capping the hierarchy at
//! one or two levels shows what the upgraded/degraded movement buys.

use ipu_core::experiment;
use ipu_core::ftl::SchemeKind;
use ipu_core::report::TextTable;
use ipu_core::trace::PaperTrace;

fn main() {
    let base = ipu_bench::bench_config();
    let traces = [PaperTrace::Ts0, PaperTrace::Usr0];
    let mut table = TextTable::new(&[
        "Trace",
        "max level",
        "overall(ms)",
        "write(ms)",
        "intra-page updates",
        "upgrades",
        "MLC host subpages",
    ]);
    for trace in traces {
        for max_level in [1u8, 2, 3] {
            let mut cfg = base.clone();
            cfg.ftl.ipu_max_level = max_level;
            let r = experiment::run_one(&cfg, trace, SchemeKind::Ipu);
            table.row(vec![
                trace.name().to_string(),
                max_level.to_string(),
                format!("{:.4}", r.overall_latency.mean_ms()),
                format!("{:.4}", r.write_latency.mean_ms()),
                r.ftl.intra_page_updates.to_string(),
                r.ftl.upgraded_writes.to_string(),
                r.ftl.host_subpages_to_mlc.to_string(),
            ]);
        }
    }
    println!("Ablation A1 — SLC cache level-count sensitivity (IPU)");
    println!("{}", table.render());
}

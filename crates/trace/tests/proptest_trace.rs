//! Property-based tests for the trace layer: parser round-trips, request
//! span arithmetic and generator invariants under arbitrary (valid) specs.

use ipu_trace::synth::SLOT_BYTES;
use ipu_trace::{
    parse_msr_reader, IoRequest, OpKind, SyntheticTraceSpec, TraceGenerator, TraceStats,
    SUBPAGE_BYTES,
};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = SyntheticTraceSpec> {
    (
        1_000u64..5_000,
        0.05f64..0.95,
        0.08f64..0.7,
        0.0f64..1.0,
        0.0f64..1.0,
        any::<u64>(),
    )
        .prop_map(|(requests, write_ratio, hot, split, big16, seed)| {
            // Build a valid bucket distribution from one split point.
            let p4 = 0.5 + split * 0.4; // 0.5..0.9
            let rest = 1.0 - p4;
            let p8 = rest * 0.4;
            let pbig = rest - p8;
            SyntheticTraceSpec {
                name: "prop".into(),
                requests,
                write_ratio,
                hot_write_fraction: hot,
                size_buckets: [p4, p8, pbig],
                big_16k_fraction: big16,
                read_written_fraction: 0.6,
                hot_skew: 2.0,
                mean_interarrival_ns: 250_000,
                seed,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated stream is well-formed: monotone timestamps, slot-based
    /// addressing, positive sizes from the allowed set.
    #[test]
    fn generated_streams_are_well_formed(spec in arb_spec()) {
        let gen = TraceGenerator::new(spec.clone());
        let footprint = gen.footprint_bytes();
        let reqs = gen.generate();
        prop_assert_eq!(reqs.len() as u64, spec.requests);
        let mut last_ts = 0;
        for r in &reqs {
            prop_assert!(r.timestamp_ns >= last_ts);
            last_ts = r.timestamp_ns;
            prop_assert_eq!(r.offset % SLOT_BYTES, 0);
            prop_assert!(r.offset + r.size as u64 <= footprint);
            prop_assert!(matches!(r.size, 4096 | 8192 | 16384 | 65536));
        }
    }

    /// The measured write ratio converges on the spec's.
    #[test]
    fn write_ratio_converges(spec in arb_spec()) {
        let stats = TraceStats::compute(&TraceGenerator::new(spec.clone()).generate());
        // 5k requests → binomial stddev ≈ 0.007; allow 5 sigma.
        prop_assert!((stats.write_ratio - spec.write_ratio).abs() < 0.04,
            "measured {} target {}", stats.write_ratio, spec.write_ratio);
    }

    /// Subpage span arithmetic: every touched subpage overlaps the byte range
    /// and the count is minimal.
    #[test]
    fn subpage_span_is_tight(offset in 0u64..1_000_000, size in 1u32..200_000) {
        let r = IoRequest::new(0, OpKind::Read, offset, size);
        let span = r.subpage_span();
        for lsn in span.clone() {
            let sub_start = lsn * SUBPAGE_BYTES;
            let sub_end = sub_start + SUBPAGE_BYTES;
            prop_assert!(sub_end > offset && sub_start < offset + size as u64,
                "subpage {lsn} does not overlap [{offset}, {})", offset + size as u64);
        }
        // Minimality: one fewer subpage cannot cover the range.
        let covered = (span.end - span.start) * SUBPAGE_BYTES;
        prop_assert!(covered >= size as u64);
        prop_assert!(covered < size as u64 + 2 * SUBPAGE_BYTES);
    }

    /// The MSR parser round-trips synthetic lines.
    #[test]
    fn msr_parser_round_trips(
        ts in 1u64..u64::MAX / 200,
        offset in 0u64..1u64 << 40,
        size in 1u32..1 << 20,
        write in any::<bool>(),
    ) {
        let op = if write { "Write" } else { "Read" };
        let line1 = format!("{ts},host,0,{op},{offset},{size},100");
        let line2 = format!("{},host,0,Read,0,512,100", ts + 10);
        let text = format!("Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n{line1}\n{line2}\n");
        let reqs = parse_msr_reader(text.as_bytes()).unwrap();
        prop_assert_eq!(reqs.len(), 2);
        prop_assert_eq!(reqs[0].offset, offset);
        prop_assert_eq!(reqs[0].size, size);
        prop_assert_eq!(reqs[0].op, if write { OpKind::Write } else { OpKind::Read });
        // Rebase: first at 0, second at 10 ticks = 1000 ns.
        prop_assert_eq!(reqs[0].timestamp_ns, 0);
        prop_assert_eq!(reqs[1].timestamp_ns, 1000);
    }
}

//! Fixture: R8-conforming library code — returns strings instead of printing.

pub fn ok_format(x: u32) -> String {
    format!("x = {x}")
}

//! `IPU+` — the paper's stated future work (§5), implemented as an extension.
//!
//! > "In the future, we will study improving the page utilization without a
//! > noticeable error increase, by adaptively combining infrequent data and
//! > saving them in the same page."
//!
//! IPU+ keeps everything that makes IPU work — intra-page updates for hot
//! data, the three-level hierarchy, ISR GC with degraded movement — and adds
//! MGA-style packing *for cold data only*: first-time (non-update) small
//! writes are combined into shared Work-level pages. The bet is asymmetric:
//!
//! * cold data is rarely *read* back hot, so the in-page disturb that packing
//!   inflicts on it contributes little to the measured read error rate, and
//! * cold data dominates page consumption under IPU (hot updates recycle
//!   their own pages), so packing it is where the utilization is lost.
//!
//! Updates never pack into foreign pages — that would reintroduce MGA's
//! disturb on hot (read-heavy) data.

use std::collections::VecDeque;

use ipu_flash::{CellMode, FlashDevice, Nanos, Ppa, MAX_SUBPAGES_PER_PAGE};
use ipu_trace::IoRequest;

use crate::config::FtlConfig;
use crate::error::FtlError;
use crate::memory::MappingMemory;
use crate::ops::{FlashOpKind, OpBatch, RoundOrigin};
use crate::stats::FtlStats;
use crate::types::{BlockLevel, Lsn};

use super::common::FtlCore;
use super::FtlScheme;

/// IPU with adaptive cold-data packing (the paper's future-work design).
#[derive(Debug)]
pub struct IpuPlusFtl {
    core: FtlCore,
    /// Work-level pages holding packed cold data with room for more.
    cold_open_pages: VecDeque<Ppa>,
}

impl IpuPlusFtl {
    pub fn new(dev: &mut FlashDevice, cfg: FtlConfig) -> Self {
        IpuPlusFtl {
            core: FtlCore::new(dev, cfg),
            cold_open_pages: VecDeque::new(),
        }
    }

    /// Number of open cold-packing pages (introspection for tests).
    pub fn cold_open_page_count(&self) -> usize {
        self.cold_open_pages.len()
    }

    /// Finds an open cold page that can absorb `count` subpages.
    fn find_cold_slot(&self, dev: &FlashDevice, count: u8) -> Option<(Ppa, u8)> {
        for &ppa in &self.cold_open_pages {
            let page = dev.block(ppa.block_addr()).page(ppa.page);
            if page.program_ops() < dev.config().max_partial_programs {
                if let Some(off) = page.find_free_run(count) {
                    return Some((ppa, off));
                }
            }
        }
        None
    }

    fn refresh_cold_page(&mut self, dev: &FlashDevice, ppa: Ppa) {
        let page = dev.block(ppa.block_addr()).page(ppa.page);
        let usable = page.program_ops() < dev.config().max_partial_programs
            && page.find_free_run(1).is_some();
        if !usable {
            self.cold_open_pages.retain(|&p| p != ppa);
        }
    }

    /// Writes new (cold) data: packed into a shared page when small, fresh
    /// Work page otherwise.
    fn write_new(
        &mut self,
        lsns: &[Lsn],
        now: Nanos,
        dev: &mut FlashDevice,
        batch: &mut OpBatch,
    ) -> Result<(), FtlError> {
        let k = lsns.len() as u8;
        if k < self.core.spp() {
            if let Some((ppa, off)) = self.find_cold_slot(dev, k) {
                let res = self.core.program_group(
                    dev,
                    ppa,
                    off,
                    lsns,
                    FlashOpKind::HostProgram,
                    now,
                    batch,
                );
                // A failed program may have retired blocks holding open pages.
                self.cold_open_pages.retain(|p| {
                    !self
                        .core
                        .bad_blocks()
                        .contains(&self.core.block_idx(p.block_addr()))
                });
                self.refresh_cold_page(dev, ppa);
                return res;
            }
        }
        let (ppa, level) = self.core.take_host_page(dev, BlockLevel::Work, batch)?;
        self.core
            .program_group(dev, ppa, 0, lsns, FlashOpKind::HostProgram, now, batch)?;
        if level.is_slc()
            && k < self.core.spp()
            && !self
                .core
                .bad_blocks()
                .contains(&self.core.block_idx(ppa.block_addr()))
        {
            self.cold_open_pages.push_back(ppa);
            while self.cold_open_pages.len() > self.core.cfg.mga_open_page_limit {
                self.cold_open_pages.pop_front();
            }
        }
        Ok(())
    }

    /// IPU's update handling, verbatim: intra-page when possible, else
    /// upgraded movement.
    fn write_update(
        &mut self,
        old_ppa: Ppa,
        group: &[Lsn],
        now: Nanos,
        dev: &mut FlashDevice,
        batch: &mut OpBatch,
    ) -> Result<(), FtlError> {
        let addr = old_ppa.block_addr();
        let block = dev.block(addr);
        let intra_offset = if block.mode() == CellMode::Slc {
            let page = block.page(old_ppa.page);
            if page.program_ops() < dev.config().max_partial_programs {
                page.find_free_run(group.len() as u8)
            } else {
                None
            }
        } else {
            None
        };
        match intra_offset {
            Some(off) => {
                self.core.program_group(
                    dev,
                    old_ppa,
                    off,
                    group,
                    FlashOpKind::HostProgram,
                    now,
                    batch,
                )?;
                self.core.stats.intra_page_updates += 1;
                // If the page was an open cold page, its remaining space may
                // now be gone.
                self.refresh_cold_page(dev, old_ppa);
            }
            None => {
                let cur = self
                    .core
                    .meta
                    .level(self.core.block_idx(addr))
                    .unwrap_or(BlockLevel::HighDensity);
                let cap = BlockLevel::from_flag_clamped(self.core.cfg.ipu_max_level as i32);
                let target = cur.promoted().min(cap);
                let (ppa, _) = self.core.take_page(dev, target, batch)?;
                self.core.program_group(
                    dev,
                    ppa,
                    0,
                    group,
                    FlashOpKind::HostProgram,
                    now,
                    batch,
                )?;
                self.core.stats.upgraded_writes += 1;
            }
        }
        Ok(())
    }

    fn write_chunk(
        &mut self,
        lsns: &[Lsn],
        now: Nanos,
        dev: &mut FlashDevice,
        batch: &mut OpBatch,
    ) -> Result<(), FtlError> {
        // A chunk is a contiguous run of at most one page's subpages, so the
        // partition fits in stack buffers and the mapping table is probed once
        // per bucket span instead of once per subpage.
        debug_assert!(lsns.len() <= MAX_SUBPAGES_PER_PAGE);
        debug_assert!(lsns.windows(2).all(|w| w[1] == w[0] + 1));
        let Some(&first) = lsns.first() else {
            return Ok(());
        };
        let mut new_lsns = [0 as Lsn; MAX_SUBPAGES_PER_PAGE];
        let mut new_n = 0usize;
        let mut group_ppas = [Ppa::new(0, 0, 0, 0, 0, 0); MAX_SUBPAGES_PER_PAGE];
        let mut group_lsns = [[0 as Lsn; MAX_SUBPAGES_PER_PAGE]; MAX_SUBPAGES_PER_PAGE];
        let mut group_lens = [0u8; MAX_SUBPAGES_PER_PAGE];
        let mut ng = 0usize;
        self.core
            .map
            .lookup_span(first, first + lsns.len() as u64, |lsn, loc| {
                let Some(spa) = loc else {
                    new_lsns[new_n] = lsn;
                    new_n += 1;
                    return;
                };
                if let Some(g) = group_ppas[..ng].iter().position(|p| *p == spa.ppa) {
                    group_lsns[g][group_lens[g] as usize] = lsn;
                    group_lens[g] += 1;
                } else {
                    group_ppas[ng] = spa.ppa;
                    group_lsns[ng][0] = lsn;
                    group_lens[ng] = 1;
                    ng += 1;
                }
            });
        if new_n > 0 {
            self.write_new(&new_lsns[..new_n], now, dev, batch)?;
        }
        for g in 0..ng {
            let group = &group_lsns[g][..group_lens[g] as usize];
            self.write_update(group_ppas[g], group, now, dev, batch)?;
        }
        Ok(())
    }

    /// IPU's ISR GC with degraded movement, plus open-page hygiene.
    fn run_gc(&mut self, now: Nanos, dev: &mut FlashDevice, batch: &mut OpBatch) {
        let mut rounds = 0;
        while self.core.slc_gc_needed()
            && self.core.slc_gc_gate_open(now)
            && rounds < self.core.cfg.gc_rounds_per_write
        {
            let _span = ipu_obs::span(ipu_obs::Phase::Gc);
            batch.begin_background_round(RoundOrigin::Gc);
            rounds += 1;
            let cost_before = batch.total_latency_sum();
            let victim = self.core.select_slc_victim_isr(dev, now);
            let Some(victim) = victim else { break };
            let Some((victim_addr, victim_level)) =
                self.core.meta.get(victim).map(|m| (m.addr, m.level))
            else {
                break;
            };
            self.cold_open_pages
                .retain(|p| p.block_addr() != victim_addr);
            let mut aborted = false;
            let mut groups = std::mem::take(&mut self.core.gc_groups);
            let groups_cap = groups.capacity();
            self.core
                .collect_victim_groups_into(dev, victim, &mut groups);
            for group in &groups {
                let dest = if group.updated {
                    victim_level
                } else {
                    victim_level.demoted()
                };
                if self
                    .core
                    .relocate_group(dev, victim_addr, group, dest, now, batch)
                    .is_err()
                {
                    aborted = true;
                    break;
                }
            }
            if groups.capacity() != groups_cap {
                self.core.stats.scratch_grows += 1;
            }
            self.core.gc_groups = groups;
            if aborted {
                // Never erase a partially-relocated victim.
                break;
            }
            self.core.erase_victim(dev, victim, now, batch);
            let round_cost = batch.total_latency_sum() - cost_before;
            self.core.finish_slc_gc_round(now, round_cost);
        }
        self.core.run_mlc_gc_if_needed(dev, now, batch);
        self.core.run_wear_leveling_if_due(dev, now, batch);
        self.core.run_scrub_if_due(dev, now, batch);
    }
}

impl FtlScheme for IpuPlusFtl {
    fn name(&self) -> &'static str {
        "IPU+"
    }

    fn on_write_into(
        &mut self,
        req: &IoRequest,
        now: Nanos,
        dev: &mut FlashDevice,
        out: &mut OpBatch,
    ) {
        self.core.begin_request(now);
        self.core.stats.host_write_requests += 1;
        for (start, len) in self.core.chunk_spans(req) {
            // A chunk is a contiguous LSN run of at most one page: stage it in
            // a stack buffer so the write path performs no heap allocation.
            let mut chunk = [0 as Lsn; MAX_SUBPAGES_PER_PAGE];
            for (i, slot) in chunk[..len as usize].iter_mut().enumerate() {
                *slot = start + i as u64;
            }
            if let Err(e) = self.write_chunk(&chunk[..len as usize], now, dev, out) {
                self.core.note_write_failure(&e, out);
            }
            self.run_gc(now, dev, out);
        }
    }

    fn on_read_into(
        &mut self,
        req: &IoRequest,
        now: Nanos,
        dev: &mut FlashDevice,
        out: &mut OpBatch,
    ) {
        self.core.begin_request(now);
        if let Err(e) = self.core.host_read(req, dev, out) {
            self.core.note_read_failure(&e, out);
        }
    }

    fn power_cycle(&mut self, dev: &FlashDevice) {
        // Cold packing candidates are volatile controller state.
        self.cold_open_pages.clear();
        self.core.rebuild_from_flash(dev);
    }

    fn stats(&self) -> &FtlStats {
        &self.core.stats
    }

    fn mapping_memory(&self, dev: &FlashDevice) -> MappingMemory {
        // Cold packing scatters chunks like MGA (second-level entries), and
        // the level labels / live-offset bits of IPU still apply; account for
        // both (the honest, slightly pessimistic model).
        let g = &dev.config().geometry;
        let spp = g.subpages_per_page();
        let summary = self.core.map.chunk_summary(spp);
        let slc_blocks = self.core.blocks.slc_total();
        let slc_pages = slc_blocks * g.pages_per_block_slc as u64;
        let mga = MappingMemory::mga(self.core.logical_pages(), summary.scattered_chunks, spp);
        let ipu = MappingMemory::ipu(self.core.logical_pages(), slc_pages, slc_blocks);
        MappingMemory {
            page_table_bytes: mga.page_table_bytes,
            second_level_bytes: mga.second_level_bytes + ipu.second_level_bytes,
            label_bytes: ipu.label_bytes,
        }
    }

    fn core(&self) -> &FtlCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut FtlCore {
        &mut self.core
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipu_flash::DeviceConfig;
    use ipu_trace::OpKind;

    fn setup() -> (IpuPlusFtl, FlashDevice) {
        let mut dev = FlashDevice::new(DeviceConfig::small_for_tests());
        let cfg = FtlConfig {
            slc_ratio: 0.25,
            ..FtlConfig::default()
        };
        let ftl = IpuPlusFtl::new(&mut dev, cfg);
        (ftl, dev)
    }

    fn w(offset: u64, size: u32) -> IoRequest {
        IoRequest::new(0, OpKind::Write, offset, size)
    }

    #[test]
    fn cold_writes_pack_together() {
        let (mut ftl, mut dev) = setup();
        ftl.on_write(&w(0, 4096), 1, &mut dev);
        ftl.on_write(&w(65536, 4096), 2, &mut dev);
        let a = ftl.core.map.lookup(0).unwrap();
        let b = ftl.core.map.lookup(16).unwrap();
        assert_eq!(a.ppa, b.ppa, "cold data from different requests must pack");
        assert_eq!((a.subpage, b.subpage), (0, 1));
    }

    #[test]
    fn updates_stay_intra_page_not_packed() {
        let (mut ftl, mut dev) = setup();
        ftl.on_write(&w(0, 4096), 1, &mut dev); // cold, packs at subpage 0
        ftl.on_write(&w(0, 4096), 2, &mut dev); // update → same page, next slot
        let spa = ftl.core.map.lookup(0).unwrap();
        assert_eq!(spa.subpage, 1);
        assert_eq!(ftl.stats().intra_page_updates, 1);
        // A different cold write now packs *after* the update's slot.
        ftl.on_write(&w(65536, 4096), 3, &mut dev);
        let c = ftl.core.map.lookup(16).unwrap();
        assert_eq!(c.ppa, spa.ppa);
        assert_eq!(c.subpage, 2);
    }

    #[test]
    fn utilization_beats_plain_ipu() {
        // Same cold-heavy churn under IPU and IPU+: the packing variant must
        // burn fewer SLC blocks.
        let run = |plus: bool| {
            let mut dev = FlashDevice::new(DeviceConfig::small_for_tests());
            let cfg = FtlConfig {
                slc_ratio: 0.25,
                ..FtlConfig::default()
            };
            let mut ftl: Box<dyn FtlScheme> = if plus {
                Box::new(IpuPlusFtl::new(&mut dev, cfg))
            } else {
                Box::new(super::super::ipu::IpuFtl::new(&mut dev, cfg))
            };
            for i in 0..200u64 {
                let now = i * 20_000_000;
                ftl.on_write(
                    &IoRequest::new(now, OpKind::Write, i * 65536, 4096),
                    now,
                    &mut dev,
                );
            }
            (ftl.stats().clone(), dev.wear().totals())
        };
        let (_, ipu_wear) = run(false);
        let (plus_stats, plus_wear) = run(true);
        assert!(
            plus_wear.slc_erases < ipu_wear.slc_erases,
            "IPU+ must erase less under cold churn: {} vs {}",
            plus_wear.slc_erases,
            ipu_wear.slc_erases
        );
        assert_eq!(
            plus_stats.intra_page_updates, 0,
            "pure cold stream has no updates"
        );
    }

    #[test]
    fn hot_chain_still_climbs_levels() {
        let (mut ftl, mut dev) = setup();
        for t in 0..12u64 {
            ftl.on_write(&w(0, 4096), t, &mut dev);
        }
        let spa = ftl.core.map.lookup(0).unwrap();
        let level = ftl
            .core
            .meta
            .level(ftl.core.block_idx(spa.ppa.block_addr()));
        assert_eq!(level, Some(BlockLevel::Hot));
    }

    #[test]
    fn mapping_memory_includes_both_structures() {
        let (mut ftl, mut dev) = setup();
        ftl.on_write(&w(0, 4096), 1, &mut dev);
        ftl.on_write(&w(65536, 4096), 2, &mut dev); // packed → scattered chunk
        let m = ftl.mapping_memory(&dev);
        assert!(m.second_level_bytes > 0);
        assert!(m.label_bytes > 0);
    }
}

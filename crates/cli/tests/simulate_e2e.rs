//! End-to-end test of the `simulate` subcommand: run the real binary on a
//! small synthetic trace, then check that the saved JSON report is internally
//! consistent — per-tenant sections must sum to the overall counters.

use std::process::Command;

use ipu_core::{ExperimentRecord, QdSweepResult};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ipu-sim"))
}

#[test]
fn simulate_runs_end_to_end_and_saves_consistent_json() {
    let dir = std::env::temp_dir().join("ipu-cli-simulate-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let save = dir.join("qd_sweep.json");

    let out = bin()
        .args([
            "simulate",
            "--traces",
            "ts0",
            "--schemes",
            "baseline,mga,ipu",
            "--scale",
            "0.002",
            "--queue-depth",
            "2,8",
            "--tenants",
            "fg:4:0,bg:1:1",
            "--arbitration",
            "wrr",
            "--threads",
            "1",
            "--save",
            save.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "simulate failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("Queue-depth sweep"),
        "missing header:\n{stdout}"
    );
    for needle in ["fg", "bg", "fairness", "wrr"] {
        assert!(stdout.contains(needle), "missing `{needle}`:\n{stdout}");
    }

    let record: ExperimentRecord<Vec<QdSweepResult>> =
        ExperimentRecord::load(&save).expect("saved JSON loads");
    assert_eq!(record.experiment, "qd_sweep");
    assert_eq!(record.result.len(), 1, "one sweep per trace");
    let sweep = &record.result[0];
    assert_eq!(sweep.trace, "ts0");
    assert_eq!(sweep.qd_points, vec![2, 8]);
    assert_eq!(sweep.reports.len(), 2);

    for row in &sweep.reports {
        assert_eq!(row.len(), 3, "baseline, mga, ipu");
        for cell in row {
            // Per-tenant completions partition the overall request count.
            let completed: u64 = cell.host.tenants.iter().map(|t| t.completed).sum();
            assert_eq!(completed, cell.sim.requests);
            // Per-tenant latency populations merge to the overall population.
            let merged = cell.host.overall_service_latency();
            assert_eq!(merged.count(), cell.sim.overall_latency.count());
            assert_eq!(merged.sum_ns(), cell.sim.overall_latency.sum_ns());
            assert_eq!(merged.max_ns(), cell.sim.overall_latency.max_ns());
            // Per-tenant stall/occupancy are well-formed.
            for t in &cell.host.tenants {
                assert!(t.stalled_requests <= t.completed);
                assert!(t.occupancy.mean() <= cell.host.queue_depth as f64 + 1e-9);
            }
            assert!(cell.host.fairness > 0.0 && cell.host.fairness <= 1.0);
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn simulate_rejects_unknown_arbitration_policy() {
    let out = bin()
        .args(["simulate", "--scale", "0.001", "--arbitration", "fifo"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown arbitration policy"),
        "stderr: {stderr}"
    );
}

//! `nondet-reduce` — order-sensitive reductions over unordered containers.
//!
//! This is the type-flow generalization of `unordered-iter`. That rule
//! flags `HashMap`/`HashSet` *mentions* in files on the deterministic
//! output surface; this one tracks which **locals** hold unordered
//! containers (let-binding type annotations, `HashMap::`/`HashSet::`
//! constructor calls, `collect::<HashMap<..>>` turbofish, typed fn
//! parameters) and flags the *reductions* whose result depends on hash
//! iteration order:
//!
//! * iterating an unordered local inside a `parallel_map` call — the
//!   per-item closures feed an order-preserving map, so nondeterministic
//!   iteration inside them re-introduces exactly the nondeterminism
//!   `parallel_map` exists to avoid;
//! * iterating an unordered local in a file on the deterministic-output
//!   surface ([`crate::rules::ORDERED_OUTPUT_FILES`]);
//! * accumulating into an `f64` local inside a `for` loop over an
//!   unordered local, anywhere in library code — float addition is not
//!   associative, so the sum differs run-to-run with hash order.
//!
//! Integer accumulation over unordered iteration is *not* flagged: `u64`
//! addition commutes exactly, and the workspace counts events that way on
//! purpose.

use crate::lexer::{TokKind, Token};
use crate::rules::ORDERED_OUTPUT_FILES;
use crate::ttree::TokenTreeIndex;
use crate::{FileCtx, Finding};
use std::collections::BTreeSet;

const UNORDERED_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Runs the rule over one file.
pub fn run(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let on_output_surface = ORDERED_OUTPUT_FILES.contains(&ctx.rel_path);
    for f in ctx
        .items
        .iter()
        .filter(|i| i.kind == crate::ttree::ItemKind::Fn && !i.is_test)
    {
        let Some(body) = f.body else { continue };
        if ctx.is_test.get(body.0).copied().unwrap_or(false) {
            continue;
        }
        check_fn(ctx, f.start, body, on_output_surface, out);
    }
}

fn check_fn(
    ctx: &FileCtx<'_>,
    sig_start: usize,
    (open, close): (usize, usize),
    on_output_surface: bool,
    out: &mut Vec<Finding>,
) {
    let toks = ctx.tokens;
    let unordered = unordered_locals(toks, ctx.tree, sig_start, open, close);
    if unordered.is_empty() {
        return;
    }
    let floats = f64_locals(toks, open, close);
    let par_spans = parallel_map_spans(toks, ctx.tree, open, close);

    // `for <pat> in <expr> { .. }` loops over unordered locals.
    let mut i = open + 1;
    while i < close {
        if toks[i].is_ident("for") {
            if let Some(lp) = for_loop(toks, ctx.tree, i, close) {
                if unordered.contains(lp.root.as_str()) {
                    let in_par = par_spans.iter().any(|&(s, e)| i > s && i < e);
                    if in_par || on_output_surface {
                        out.push(finding(
                            ctx,
                            toks[i].line,
                            format!(
                                "iterating unordered local `{}` {} — hash order is \
                                 nondeterministic; use BTreeMap/BTreeSet or sort first",
                                lp.root,
                                if in_par {
                                    "inside a parallel_map closure"
                                } else {
                                    "in a deterministic-output file"
                                },
                            ),
                        ));
                    } else {
                        // Only the float-accumulation failure mode applies.
                        for j in lp.body.0 + 1..lp.body.1 {
                            if toks[j].is_punct("+=")
                                && j > 0
                                && toks[j - 1].kind == TokKind::Ident
                                && floats.contains(toks[j - 1].text.as_str())
                            {
                                out.push(finding(
                                    ctx,
                                    toks[j].line,
                                    format!(
                                        "f64 accumulation into `{}` over unordered local `{}` — \
                                         float addition is not associative, so the sum depends \
                                         on hash order; iterate a sorted view",
                                        toks[j - 1].text,
                                        lp.root,
                                    ),
                                ));
                            }
                        }
                    }
                }
                i = lp.body.1 + 1;
                continue;
            }
        }
        // `.iter()` / `.values()` / `.keys()` chains on unordered locals
        // inside parallel_map spans (fold/map chains instead of for-loops).
        if toks[i].kind == TokKind::Ident
            && unordered.contains(toks[i].text.as_str())
            && toks.get(i + 1).is_some_and(|t| t.is_punct("."))
            && toks.get(i + 2).is_some_and(|t| {
                t.is_ident("iter")
                    || t.is_ident("values")
                    || t.is_ident("keys")
                    || t.is_ident("into_iter")
                    || t.is_ident("drain")
            })
            && par_spans.iter().any(|&(s, e)| i > s && i < e)
        {
            out.push(finding(
                ctx,
                toks[i].line,
                format!(
                    "iterating unordered local `{}` inside a parallel_map closure — \
                     hash order is nondeterministic; use BTreeMap/BTreeSet or sort first",
                    toks[i].text,
                ),
            ));
        }
        i += 1;
    }
}

fn finding(ctx: &FileCtx<'_>, line: u32, message: String) -> Finding {
    Finding {
        rule: "nondet-reduce",
        file: ctx.rel_path.to_string(),
        line,
        message,
    }
}

struct ForLoop {
    /// Root identifier of the iterated expression (`m` in `for x in &m`,
    /// `for x in m.values()`); empty when the expression has no ident root.
    root: String,
    body: (usize, usize),
}

/// Parses the `for` loop starting at `kw` (index of the `for` token).
fn for_loop(toks: &[Token], tree: &TokenTreeIndex, kw: usize, limit: usize) -> Option<ForLoop> {
    // Find `in` at depth 0 (the pattern may contain `( .. )` tuples).
    let mut i = kw + 1;
    while i < limit && !toks[i].is_ident("in") {
        if toks[i].is_punct("(") || toks[i].is_punct("[") {
            i = tree.close_of(i)? + 1;
        } else if toks[i].is_punct("{") {
            return None; // not a for-loop header shape we understand
        } else {
            i += 1;
        }
    }
    if i >= limit {
        return None;
    }
    // Root ident of the iterated expression: first ident after `in`,
    // skipping `&` / `mut`.
    let mut j = i + 1;
    while j < limit && (toks[j].is_punct("&") || toks[j].is_ident("mut")) {
        j += 1;
    }
    let root = match toks.get(j) {
        Some(t) if t.kind == TokKind::Ident => t.text.clone(),
        _ => String::new(),
    };
    // Body: first `{` at depth 0 after `in`.
    let mut k = i + 1;
    while k < limit {
        let t = &toks[k];
        if t.is_punct("(") || t.is_punct("[") {
            k = tree.close_of(k)? + 1;
            continue;
        }
        if t.is_punct("{") {
            let c = tree.close_of(k)?;
            return Some(ForLoop { root, body: (k, c) });
        }
        k += 1;
    }
    None
}

/// Names bound to `HashMap`/`HashSet` in a fn's signature or body.
fn unordered_locals(
    toks: &[Token],
    tree: &TokenTreeIndex,
    sig_start: usize,
    open: usize,
    close: usize,
) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    // Typed fn parameters: `name : .. HashMap ..` between the signature's
    // `(` and `)` — per-parameter, split on depth-0 commas.
    if let Some(paren) = (sig_start..open).find(|&i| toks[i].is_punct("(")) {
        if let Some(end) = tree.close_of(paren) {
            let mut seg_start = paren + 1;
            let mut i = paren + 1;
            while i <= end {
                let at_split = i == end || toks[i].is_punct(",");
                if !at_split {
                    if toks[i].is_punct("(") || toks[i].is_punct("[") || toks[i].is_punct("{") {
                        if let Some(c) = tree.close_of(i) {
                            i = c + 1;
                            continue;
                        }
                    }
                    i += 1;
                    continue;
                }
                let seg = &toks[seg_start..i];
                if seg
                    .iter()
                    .any(|t| UNORDERED_TYPES.iter().any(|u| t.is_ident(u)))
                {
                    let mut k = 0;
                    while k < seg.len() && (seg[k].is_ident("mut") || seg[k].is_punct("&")) {
                        k += 1;
                    }
                    if k + 1 < seg.len()
                        && seg[k].kind == TokKind::Ident
                        && seg[k + 1].is_punct(":")
                    {
                        set.insert(seg[k].text.clone());
                    }
                }
                seg_start = i + 1;
                i += 1;
            }
        }
    }
    // Let bindings in the body.
    let mut i = open + 1;
    while i < close {
        if !toks[i].is_ident("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        while j < close && toks[j].is_ident("mut") {
            j += 1;
        }
        let Some(name_tok) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
            i = j + 1;
            continue;
        };
        let name = name_tok.text.clone();
        // Statement span: to the `;` at depth 0.
        let mut k = j + 1;
        let mut annotated_unordered = false;
        let mut init_unordered = false;
        let mut seen_eq = false;
        while k < close {
            let t = &toks[k];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                match tree.close_of(k) {
                    Some(c) => {
                        // Look inside groups too: `collect::<HashMap<_, _>>()`
                        // puts the type in the turbofish, outside any group,
                        // but `Vec<(K, HashMap<..>)>` nests it.
                        if toks[k + 1..c]
                            .iter()
                            .any(|t| UNORDERED_TYPES.iter().any(|u| t.is_ident(u)))
                        {
                            if seen_eq {
                                init_unordered = true;
                            } else {
                                annotated_unordered = true;
                            }
                        }
                        k = c + 1;
                        continue;
                    }
                    None => return set,
                }
            }
            if t.is_punct(";") {
                break;
            }
            if t.is_punct("=") {
                seen_eq = true;
            }
            if UNORDERED_TYPES.iter().any(|u| t.is_ident(u)) {
                if seen_eq {
                    init_unordered = true;
                } else {
                    annotated_unordered = true;
                }
            }
            k += 1;
        }
        if annotated_unordered || init_unordered {
            set.insert(name);
        }
        i = k + 1;
    }
    set
}

/// Names of locals initialised from float literals or annotated `f64`/`f32`.
fn f64_locals(toks: &[Token], open: usize, close: usize) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    let mut i = open + 1;
    while i + 2 < close {
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            while j < close && toks[j].is_ident("mut") {
                j += 1;
            }
            if let Some(name_tok) = toks.get(j).filter(|t| t.kind == TokKind::Ident) {
                let is_float = match toks.get(j + 1) {
                    Some(t) if t.is_punct(":") => toks
                        .get(j + 2)
                        .is_some_and(|t| t.is_ident("f64") || t.is_ident("f32")),
                    Some(t) if t.is_punct("=") => {
                        toks.get(j + 2).is_some_and(|t| t.kind == TokKind::Float)
                    }
                    _ => false,
                };
                if is_float {
                    set.insert(name_tok.text.clone());
                }
            }
        }
        i += 1;
    }
    set
}

/// Call-argument spans of every `parallel_map(..)` call in the body.
fn parallel_map_spans(
    toks: &[Token],
    tree: &TokenTreeIndex,
    open: usize,
    close: usize,
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in open + 1..close {
        if toks[i].is_ident("parallel_map") && toks.get(i + 1).is_some_and(|t| t.is_punct("(")) {
            if let Some(c) = tree.close_of(i + 1) {
                out.push((i + 1, c));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::lint_str;

    const FILE: &str = "crates/host/src/x.rs"; // not on the output surface

    #[test]
    fn unordered_iter_inside_parallel_map_fires() {
        let src = "fn f(shards: HashMap<u32, u32>) -> Vec<u32> {\n    parallel_map(v, 4, move |x| {\n        let mut acc = 0u32;\n        for (_, s) in &shards { acc += s; }\n        acc\n    })\n}";
        let (findings, _) = lint_str("host", FILE, false, src);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert_eq!(findings[0].rule, "nondet-reduce");
        assert!(findings[0].message.contains("parallel_map"));
    }

    #[test]
    fn method_chain_inside_parallel_map_fires() {
        let src = "fn f() {\n    let m = HashMap::new();\n    parallel_map(v, 4, |x| m.values().sum::<u64>());\n}";
        let (findings, _) = lint_str("host", FILE, false, src);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert_eq!(findings[0].rule, "nondet-reduce");
    }

    #[test]
    fn f64_accumulation_over_unordered_fires_anywhere() {
        let src = "fn f(m: &HashMap<u32, f64>) -> f64 {\n    let mut sum = 0.0;\n    for (_, v) in m { sum += v; }\n    sum\n}";
        let (findings, _) = lint_str("host", FILE, false, src);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("not associative"));
    }

    #[test]
    fn u64_accumulation_over_unordered_is_fine() {
        let src = "fn f(m: &HashMap<u32, u64>) -> u64 {\n    let mut sum = 0u64;\n    for (_, v) in m { sum += v; }\n    sum\n}";
        let (findings, _) = lint_str("host", FILE, false, src);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn ordered_containers_are_fine_everywhere() {
        let src = "fn f(m: &BTreeMap<u32, f64>) -> f64 {\n    let mut sum = 0.0;\n    for (_, v) in m { sum += v; }\n    parallel_map(v, 4, |x| m.values().sum::<f64>());\n    sum\n}";
        let (findings, _) = lint_str("host", FILE, false, src);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn collect_turbofish_tracks_the_local() {
        let src = "fn f(v: Vec<(u32, u32)>) {\n    let m = v.into_iter().collect::<HashMap<u32, u32>>();\n    parallel_map(w, 4, |x| { for k in m.keys() { use_it(k); } });\n}";
        let (findings, _) = lint_str("host", FILE, false, src);
        assert_eq!(findings.len(), 1, "{findings:#?}");
    }
}

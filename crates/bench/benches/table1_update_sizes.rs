//! `cargo bench -p ipu-bench --bench table1_update_sizes`
//!
//! Regenerates the paper's Table 1 (size distribution of updated requests)
//! from the calibrated synthetic traces, next to the published values.

fn main() {
    let cfg = ipu_bench::bench_config();
    let rows = ipu_core::run_trace_tables(&cfg);
    println!("{}", ipu_core::report::render_table1(&rows));
}

//! MSR-Cambridge-format trace writer.
//!
//! The inverse of [`crate::parser`]: serializes a request stream back into
//! the SNIA CSV format. This lets the calibrated synthetic traces be exported
//! and replayed through *other* simulators (the original SSDsim, MQSim, ...)
//! for cross-validation of this reproduction.

use std::io::{self, Write};

use crate::request::IoRequest;

/// Windows FILETIME tick length in nanoseconds (the format's time unit).
const FILETIME_TICK_NS: u64 = 100;

/// FILETIME of an arbitrary epoch so exported timestamps look plausible
/// (2016-01-01, matching the VDI traces' collection period).
const EXPORT_EPOCH_TICKS: u64 = 130_963_392_000_000_000;

/// Writes `requests` in MSR CSV format, including the header line.
///
/// Timestamps are rebased onto `EXPORT_EPOCH_TICKS`; `hostname` fills the
/// format's host field (the paper's traces use short machine names).
pub fn write_msr<W: Write>(mut w: W, requests: &[IoRequest], hostname: &str) -> io::Result<()> {
    writeln!(
        w,
        "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime"
    )?;
    for r in requests {
        let ticks = EXPORT_EPOCH_TICKS + r.timestamp_ns / FILETIME_TICK_NS;
        let op = if r.op.is_write() { "Write" } else { "Read" };
        writeln!(w, "{ticks},{hostname},0,{op},{},{},0", r.offset, r.size)?;
    }
    Ok(())
}

/// Convenience: serializes to a `String`.
pub fn to_msr_string(requests: &[IoRequest], hostname: &str) -> String {
    let mut buf = Vec::new();
    write_msr(&mut buf, requests, hostname).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("CSV output is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_msr_reader;
    use crate::request::OpKind;

    #[test]
    fn round_trips_through_the_parser() {
        let original = vec![
            IoRequest::new(0, OpKind::Write, 65536, 4096),
            IoRequest::new(1_500, OpKind::Read, 0, 8192),
            IoRequest::new(2_000_000, OpKind::Write, 1 << 30, 65536),
        ];
        let csv = to_msr_string(&original, "synth");
        let parsed = parse_msr_reader(csv.as_bytes()).unwrap();
        assert_eq!(parsed.len(), original.len());
        for (a, b) in parsed.iter().zip(&original) {
            assert_eq!(a.op, b.op);
            assert_eq!(a.offset, b.offset);
            assert_eq!(a.size, b.size);
            // Timestamps are preserved to tick (100 ns) resolution, rebased
            // so the first request is at zero.
            assert_eq!(a.timestamp_ns, b.timestamp_ns / 100 * 100);
        }
    }

    #[test]
    fn generated_traces_survive_the_round_trip() {
        let spec = crate::specs::paper_trace(crate::specs::PaperTrace::Lun2).with_requests(2_000);
        let original = crate::synth::TraceGenerator::new(spec).generate();
        let csv = to_msr_string(&original, "lun2");
        let parsed = parse_msr_reader(csv.as_bytes()).unwrap();
        assert_eq!(parsed.len(), original.len());
        // Statistics are preserved through the round trip.
        let a = crate::stats::TraceStats::compute(&original);
        let b = crate::stats::TraceStats::compute(&parsed);
        assert_eq!(a.writes, b.writes);
        assert_eq!(a.written_footprint_subpages, b.written_footprint_subpages);
        assert!((a.hot_write_ratio - b.hot_write_ratio).abs() < 1e-12);
    }

    #[test]
    fn header_and_fields_match_the_format() {
        let csv = to_msr_string(&[IoRequest::new(100, OpKind::Read, 512, 1024)], "hm");
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime"
        );
        let fields: Vec<&str> = lines.next().unwrap().split(',').collect();
        assert_eq!(fields.len(), 7);
        assert_eq!(fields[1], "hm");
        assert_eq!(fields[3], "Read");
        assert_eq!(fields[4], "512");
        assert_eq!(fields[5], "1024");
    }
}

//! Fixture: R3 (unordered-iter) violations, linted under an ordered-output
//! path such as `crates/core/src/report.rs`.

use std::collections::HashMap;

pub fn render(m: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    for (k, v) in m {
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}

//! Typed FTL errors for host-reachable failure paths.
//!
//! The FTL distinguishes three failure classes: the device is genuinely full
//! of live data (`OutOfSpace`), a write could not be placed even after the
//! bad-block retirement/retry machinery ran (`WriteFailed`), and a raw flash
//! error surfaced by the device model (`Flash`). Internal invariant
//! violations (corrupted mapping state, programming an unopened block) also
//! surface as `Flash` errors rather than panics — `ipu-lint`'s `no-panic`
//! rule keeps host-reachable FTL paths panic-free, and
//! `FtlCore::check_invariants` is the debugging tool for state corruption.

use ipu_flash::FlashError;

use crate::types::BlockLevel;

/// Error returned by FTL write/read paths reachable from host requests.
#[derive(Debug, Clone, PartialEq)]
pub enum FtlError {
    /// No free page could be found at or below `level`, and no fully-invalid
    /// block remained to reclaim: the logical footprint exceeds physical
    /// capacity (minus retired blocks).
    OutOfSpace { level: BlockLevel },
    /// A program kept failing across `attempts` placements (each failure
    /// retired the target block and retried on a fresh page).
    WriteFailed { attempts: u32 },
    /// A flash operation was rejected by the device model.
    Flash(FlashError),
}

impl std::fmt::Display for FtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtlError::OutOfSpace { level } => write!(
                f,
                "flash exhausted: no free pages at or below {level}, and no \
                 fully-invalid blocks remain to reclaim"
            ),
            FtlError::WriteFailed { attempts } => {
                write!(f, "write failed after {attempts} placement attempts")
            }
            FtlError::Flash(e) => write!(f, "flash error: {e}"),
        }
    }
}

impl std::error::Error for FtlError {}

impl From<FlashError> for FtlError {
    fn from(e: FlashError) -> Self {
        FtlError::Flash(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = FtlError::OutOfSpace {
            level: BlockLevel::Work,
        };
        assert!(e.to_string().contains("work"));
        let e = FtlError::WriteFailed { attempts: 4 };
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn flash_errors_convert() {
        let fe = FlashError::OutOfRange("x".into());
        let e: FtlError = fe.clone().into();
        assert_eq!(e, FtlError::Flash(fe));
    }
}

//! Shared FTL machinery: active blocks, chunking, programming, the host read
//! path, and GC execution primitives. The three schemes (Baseline / MGA / IPU)
//! differ only in placement policy, victim selection and GC data movement;
//! everything else lives here.

use std::collections::{BTreeMap, BTreeSet};

use ipu_flash::{
    BlockAddr, CellMode, FlashDevice, FlashError, FlashGeometry, Nanos, Ppa, RetryLadder, Spa,
    SubpageState, MAX_SUBPAGES_PER_PAGE,
};
use ipu_trace::IoRequest;

use crate::block_mgr::BlockManager;
use crate::cache_meta::CacheMeta;
use crate::config::FtlConfig;
use crate::error::FtlError;
use crate::gc::{
    greedy_score, isr_score_fast, isr_upper_bound, select_greedy, select_isr, GcGranularity,
};
use crate::mapping::{MappingTable, OwnerTable};
use crate::ops::{FlashOpKind, OpBatch, ReqStatus, RoundOrigin};
use crate::stats::FtlStats;
use crate::types::{BlockLevel, Lsn};
use crate::victim_index::VictimIndex;
use crate::wear_leveling::WearLeveler;

/// Maximum placements tried for one program group before the write fails
/// (each failed attempt retires its block and retries on a fresh page).
const MAX_PROGRAM_ATTEMPTS: u32 = 4;

/// SLC blocks examined per scrub pass (bounds the per-request scan cost).
const SCRUB_BLOCKS_PER_PASS: usize = 8;

/// An open block accepting sequential page allocations.
#[derive(Debug, Clone, Copy)]
pub struct ActiveBlock {
    pub addr: BlockAddr,
    pub next_page: u32,
    pub pages: u32,
}

impl ActiveBlock {
    /// Next free page, or `None` when the block is full.
    fn take_page(&mut self) -> Option<Ppa> {
        if self.next_page < self.pages {
            let p = self.addr.page(self.next_page);
            self.next_page += 1;
            Some(p)
        } else {
            None
        }
    }
}

/// Valid data of one page of a GC victim, grouped for relocation.
#[derive(Debug, Clone, Copy)]
pub struct PageGroup {
    pub page: u32,
    /// Whether the page received an intra-page update while in this block.
    pub updated: bool,
    subs_len: u8,
    /// Inline so a GC round recycles one flat group buffer with no per-page
    /// heap traffic (see [`FtlCore::collect_victim_groups_into`]).
    subs: [(u8, Lsn); MAX_SUBPAGES_PER_PAGE],
}

impl PageGroup {
    /// `(subpage offset, owning LSN)` of each valid subpage, ascending offset.
    #[inline]
    pub fn subs(&self) -> &[(u8, Lsn)] {
        &self.subs[..self.subs_len as usize]
    }
}

/// Durable per-subpage record, modelling what a real FTL writes into the
/// page's out-of-band (spare) area alongside the data. Power-loss recovery
/// rebuilds the mapping table and cache metadata from these.
#[derive(Debug, Clone, Copy)]
struct SubTag {
    lsn: Lsn,
    written_ns: Nanos,
    /// Whether this program was a follow-up (second+) op on its page — the
    /// durable form of the intra-page-update flag.
    follow_up: bool,
}

/// Durable per-block shadow: level label, open order and the OOB tags of
/// every subpage programmed in the current erase cycle. Erase drops the
/// entry (OOB is erased with the data); retirement drops it too.
#[derive(Debug, Clone)]
struct BlockOob {
    level: BlockLevel,
    opened_seq: u64,
    /// Tag per page-major subpage slot (`None` = never programmed this erase
    /// cycle). Ascending slot order is (page, subpage) order, so power-loss
    /// replay walks tags in program-layout order without an explicit sort,
    /// and the write path records a tag with one indexed store instead of a
    /// tree insert. Sized for the larger (MLC) page count at creation.
    tags: Vec<Option<SubTag>>,
}

impl BlockOob {
    /// Tags present, in ascending (page, subpage) order.
    fn iter_tags(&self, spp: u32) -> impl Iterator<Item = (u32, u8, &SubTag)> {
        self.tags.iter().enumerate().filter_map(move |(slot, t)| {
            t.as_ref()
                .map(|tag| ((slot as u32) / spp, (slot % spp as usize) as u8, tag))
        })
    }
}

/// Shared FTL state and mechanics.
#[derive(Debug)]
pub struct FtlCore {
    pub cfg: FtlConfig,
    pub map: MappingTable,
    pub owners: OwnerTable,
    pub blocks: BlockManager,
    pub meta: CacheMeta,
    pub stats: FtlStats,
    geometry: FlashGeometry,
    /// Ring of active (open) blocks per level — page allocations round-robin
    /// across the ring so consecutive writes stripe over planes/chips, as
    /// SSDsim's dynamic allocation does. Baseline/MGA only use the Work and
    /// HighDensity rings, IPU uses all four.
    actives: [Vec<ActiveBlock>; 4],
    /// Round-robin cursors per level.
    rr: [usize; 4],
    /// Earliest simulated time the next SLC GC round may start (the previous
    /// round's movement and erase are still occupying the device).
    slc_gc_ready_at: Nanos,
    /// Same gate for the MLC region.
    mlc_gc_ready_at: Nanos,
    /// Block erase latency (from the device timing config).
    erase_ns: Nanos,
    /// Static wear-leveling trigger state.
    wear_leveler: WearLeveler,
    /// A wear-gap check is due (set by erase accounting).
    wl_check_due: bool,
    /// Read-retry ladder walked on uncorrectable host reads (from the device
    /// config; empty = pre-fault-model behaviour).
    retry: RetryLadder,
    /// Dense indices of blocks retired after program/erase failures. This is
    /// the bad-block table: durable (a real FTL persists it in flash), so it
    /// survives power loss. Ordered so free-pool reconstruction and reports
    /// see a deterministic sequence.
    bad_blocks: BTreeSet<u64>,
    /// Durable OOB shadow per in-use block (see [`BlockOob`]).
    oob: BTreeMap<u64, BlockOob>,
    /// Round-robin position of the background scrub scan.
    scrub_cursor: u64,
    /// Reusable read-run merge buffer: `host_read` takes it, fills it, and
    /// puts it back, so steady-state reads allocate nothing.
    read_runs: Vec<(Spa, u8)>,
    /// Reusable GC page-group buffer, shared by the schemes' SLC GC loops and
    /// the core's MLC GC / wear-leveling paths via take/put-back.
    pub(crate) gc_groups: Vec<PageGroup>,
    /// Reusable (upper bound, opened_seq, idx) candidate list for ISR victim
    /// selection; kept sorted scratch so steady-state GC allocates nothing.
    isr_scratch: Vec<(f64, u64, u64)>,
    /// Bucketed priority index over in-use SLC blocks, maintained on block
    /// open/close and subpage invalidation so GC victim selection never
    /// rescans the whole cache (see [`VictimIndex`]).
    victim_index: VictimIndex,
}

impl FtlCore {
    /// Builds the core and formats the SLC region of `dev` into SLC-mode.
    pub fn new(dev: &mut FlashDevice, cfg: FtlConfig) -> Self {
        // ipu-lint: allow(panic-reachability) — constructor contract: configs are validated at the experiment boundary, a bad one here is programmer error
        cfg.validate().expect("invalid FTL configuration");
        let geometry = dev.config().geometry.clone();
        let blocks = BlockManager::new(&geometry, &cfg);
        for addr in blocks.slc_region_blocks() {
            dev.set_block_mode(addr, CellMode::Slc);
        }
        FtlCore {
            cfg,
            map: MappingTable::new(),
            owners: OwnerTable::new(&geometry),
            blocks,
            meta: CacheMeta::new(),
            stats: FtlStats::default(),
            geometry,
            actives: [Vec::new(), Vec::new(), Vec::new(), Vec::new()],
            rr: [0; 4],
            slc_gc_ready_at: 0,
            mlc_gc_ready_at: 0,
            erase_ns: dev.config().timing.erase_ns(),
            wear_leveler: WearLeveler::new(),
            wl_check_due: false,
            retry: dev.config().retry.clone(),
            bad_blocks: BTreeSet::new(),
            oob: BTreeMap::new(),
            scrub_cursor: 0,
            read_runs: Vec::new(),
            gc_groups: Vec::new(),
            isr_scratch: Vec::new(),
            victim_index: VictimIndex::new(),
        }
    }

    /// Dense indices of blocks retired after media failures.
    pub fn bad_blocks(&self) -> &BTreeSet<u64> {
        &self.bad_blocks
    }

    /// Device geometry this FTL serves.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    /// Subpages per page (4 at paper scale).
    #[inline]
    pub fn spp(&self) -> u8 {
        self.geometry.subpages_per_page() as u8
    }

    /// Logical pages the device exposes (first-level mapping-table entries).
    pub fn logical_pages(&self) -> u64 {
        self.geometry.mlc_capacity_bytes() / self.geometry.page_size as u64
    }

    /// Dense block index of an address.
    #[inline]
    pub fn block_idx(&self, addr: BlockAddr) -> u64 {
        self.geometry.block_index(addr)
    }

    /// Chip a block's operations occupy.
    #[inline]
    pub fn chip_of(&self, addr: BlockAddr) -> u32 {
        self.geometry.chip_index(addr)
    }

    /// Splits a request's logical subpages into page-aligned
    /// `(first LSN, subpage count)` spans without allocating — the span is
    /// contiguous, so each chunk is fully described by its start and length.
    ///
    /// Each span targets one flash page (the paper's "an SLC-mode page only
    /// holds the valid data from a single request").
    pub fn chunk_spans(&self, req: &IoRequest) -> impl Iterator<Item = (Lsn, u8)> {
        let spp = self.spp() as u64;
        let span = req.subpage_span();
        let end = span.end;
        let mut lsn = span.start;
        std::iter::from_fn(move || {
            if lsn >= end {
                return None;
            }
            let page_end = (lsn / spp + 1) * spp;
            let len = page_end.min(end) - lsn;
            let start = lsn;
            lsn += len;
            Some((start, len as u8))
        })
    }

    /// Materialized form of [`Self::chunk_spans`] (test and tooling
    /// convenience; the request hot paths iterate the spans directly).
    pub fn chunks(&self, req: &IoRequest) -> Vec<Vec<Lsn>> {
        self.chunk_spans(req)
            .map(|(start, len)| (start..start + len as u64).collect())
            .collect()
    }

    /// Addresses of the active blocks at `level`.
    pub fn active_addrs(&self, level: BlockLevel) -> Vec<BlockAddr> {
        self.actives[level as usize]
            .iter()
            .map(|a| a.addr)
            .collect()
    }

    /// Whether `addr` is currently an active block of any level.
    pub fn is_active(&self, addr: BlockAddr) -> bool {
        self.actives.iter().flatten().any(|a| a.addr == addr)
    }

    fn open_active(&mut self, addr: BlockAddr, level: BlockLevel) {
        let pages = if level.is_slc() {
            self.geometry.pages_per_block_slc
        } else {
            self.geometry.pages_per_block_mlc
        };
        let idx = self.block_idx(addr);
        self.meta
            .open_block(idx, addr, level, pages, self.geometry.subpages_per_page());
        if level.is_slc() {
            // A freshly-allocated block is erased: its greedy score is 0.
            let seq = self.meta.get(idx).map_or(0, |m| m.opened_seq());
            self.victim_index.insert(idx, seq, 0);
        }
        self.actives[level as usize].push(ActiveBlock {
            addr,
            next_page: 0,
            pages,
        });
    }

    /// Records a subpage invalidation in the cache metadata (incremental ISR
    /// aggregates) and the victim index (cached greedy score). Must be called
    /// after every successful `dev.invalidate` so both stay mirrors of the
    /// device's validity state.
    fn note_invalidated(&mut self, block_idx: u64, spa: Spa) {
        if let Some(m) = self.meta.get_mut(block_idx) {
            m.note_invalidate(spa.ppa.page, spa.subpage);
        }
        self.victim_index.note_invalidated(block_idx);
    }

    /// Greedy SLC GC victim via the priority index: highest cached
    /// invalid-subpage score, ties toward the oldest `opened_seq`, active
    /// write targets skipped. Selects exactly the block the retired linear
    /// scan ([`Self::oracle_slc_victim_greedy`]) would — property tests pin
    /// the equivalence.
    pub fn select_slc_victim_greedy(&self) -> Option<u64> {
        self.victim_index
            .select_greedy(|i| self.meta.get(i).is_none_or(|m| self.is_active(m.addr)))
    }

    /// ISR SLC GC victim (paper Equations 1–2) over the index's membership
    /// set, scored with the incremental evaluator and pruned by
    /// [`isr_upper_bound`]: candidates are visited in descending bound order,
    /// so as soon as one bound cannot beat the best exact score seen, every
    /// remaining candidate is pruned too and the scan stops without
    /// evaluating any exponential. Selects exactly the block the full linear
    /// scan ([`Self::oracle_slc_victim_isr`]) would: the bound
    /// over-approximates the score (every age term is ≤ 1), so no pruned
    /// candidate could have won or tied, and the replacement rule computes
    /// `select_isr`'s (max score, min seq) ordering, which is a maximum over
    /// a total order and therefore independent of visit order.
    pub fn select_slc_victim_isr(&mut self, dev: &FlashDevice, now: Nanos) -> Option<u64> {
        let mut cands = std::mem::take(&mut self.isr_scratch);
        let cap_before = cands.capacity();
        cands.clear();
        for (idx, _, seq) in self.victim_index.members() {
            let Some(m) = self.meta.get(idx) else {
                continue;
            };
            if self.is_active(m.addr) {
                continue;
            }
            let block = dev.block_by_index(idx);
            cands.push((isr_upper_bound(block, m), seq, idx));
        }
        cands.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.2.cmp(&b.2)));
        let mut best: Option<(f64, u64, u64)> = None; // (score, opened_seq, idx)
        for &(ub, seq, idx) in &cands {
            if let Some((bs, bseq, _)) = best {
                if ub + 1e-9 < bs {
                    break; // sorted descending: all remaining bounds lose too
                }
                let Some(m) = self.meta.get(idx) else {
                    continue;
                };
                let s = isr_score_fast(dev.block_by_index(idx), m, now);
                if s > bs || (s == bs && seq < bseq) {
                    best = Some((s, seq, idx));
                }
            } else {
                let Some(m) = self.meta.get(idx) else {
                    continue;
                };
                best = Some((isr_score_fast(dev.block_by_index(idx), m, now), seq, idx));
            }
        }
        if cands.capacity() != cap_before {
            self.stats.scratch_grows += 1;
        }
        self.isr_scratch = cands;
        best.map(|(_, _, idx)| idx)
    }

    /// Reference greedy victim selection: the linear scan the schemes used
    /// before the index existed. Kept as the oracle for equivalence tests.
    pub fn oracle_slc_victim_greedy(&self, dev: &FlashDevice) -> Option<u64> {
        let cands = self
            .meta
            .slc_blocks()
            .filter(|(_, m)| !self.is_active(m.addr))
            .map(|(i, m)| (i, dev.block_by_index(i), m.opened_seq()));
        select_greedy(cands, GcGranularity::Subpage)
    }

    /// Reference ISR victim selection (full recomputation linear scan). Kept
    /// as the oracle for equivalence tests.
    pub fn oracle_slc_victim_isr(&self, dev: &FlashDevice, now: Nanos) -> Option<u64> {
        let cands = self.meta.slc_blocks().filter_map(|(i, m)| {
            if self.is_active(m.addr) {
                None
            } else {
                Some((i, dev.block_by_index(i), m))
            }
        });
        select_isr(cands, now)
    }

    fn free_blocks_for(&self, level: BlockLevel) -> u64 {
        if level.is_slc() {
            self.blocks.slc_free_count()
        } else {
            self.blocks.mlc_free_count()
        }
    }

    fn allocate_for(&mut self, level: BlockLevel) -> Option<BlockAddr> {
        if level.is_slc() {
            self.blocks.allocate_slc()
        } else {
            self.blocks.allocate_mlc()
        }
    }

    /// Attempts to hand out a page from `level`'s active ring, growing the
    /// ring up to `write_parallelism` blocks when the free pool is
    /// comfortable (so consecutive allocations stripe across planes) and
    /// shrinking to single-block operation under space pressure.
    fn try_take_at_level(&mut self, level: BlockLevel) -> Option<Ppa> {
        let li = level as usize;
        loop {
            // Top up the ring.
            while self.actives[li].len() < self.cfg.write_parallelism {
                let comfortable = self.free_blocks_for(level) > self.cfg.write_parallelism as u64;
                if !self.actives[li].is_empty() && !comfortable {
                    break;
                }
                match self.allocate_for(level) {
                    Some(addr) => self.open_active(addr, level),
                    None => break,
                }
            }
            if self.actives[li].is_empty() {
                return None;
            }
            // Round-robin scan for an open block with a free page.
            let n = self.actives[li].len();
            for _ in 0..n {
                let i = self.rr[li] % n;
                self.rr[li] += 1;
                if let Some(ppa) = self.actives[li][i].take_page() {
                    return Some(ppa);
                }
            }
            // Every ring member is full: retire them (they remain GC
            // candidates via the metadata registry) and retry.
            self.actives[li].clear();
            if self.free_blocks_for(level) == 0 {
                return None;
            }
        }
    }

    /// Attempts the full fallback chain: the requested level, then each lower
    /// SLC level, then the MLC region.
    fn try_take_chain(&mut self, level: BlockLevel) -> Option<(Ppa, BlockLevel)> {
        let mut try_levels: Vec<BlockLevel> = Vec::with_capacity(4);
        let mut l = level;
        loop {
            try_levels.push(l);
            if l == BlockLevel::HighDensity || l == BlockLevel::Work {
                break;
            }
            l = l.demoted();
        }
        if try_levels.last().copied() != Some(BlockLevel::HighDensity) {
            try_levels.push(BlockLevel::HighDensity);
        }
        for lv in try_levels {
            if let Some(ppa) = self.try_take_at_level(lv) {
                return Some((ppa, lv));
            }
        }
        None
    }

    /// Erases fully-invalid non-active blocks immediately (no valid data to
    /// move), returning how many blocks were reclaimed. This is the
    /// emergency path taken when an allocation stalls: the host is already
    /// blocked on the device, so the usual GC pacing gate does not apply and
    /// the blocks re-enter the pool at once.
    fn emergency_reclaim(&mut self, dev: &mut FlashDevice, batch: &mut OpBatch) -> u32 {
        // The host is blocked on this reclaim, but the erase pulses still run
        // on the background channel: give them their own round tag.
        batch.begin_background_round(RoundOrigin::Gc);
        let victims: Vec<u64> = self
            .meta
            .iter()
            .filter(|(_, m)| !self.is_active(m.addr))
            .filter(|(i, _)| {
                let b = dev.block_by_index(*i);
                b.count_subpages(SubpageState::Valid) == 0 && !b.is_pristine()
            })
            .map(|(i, _)| i)
            .take(8)
            .collect();
        let mut reclaimed = 0;
        for v in victims {
            let Some(meta) = self.meta.close_block(v) else {
                continue; // victims come from the registry; a vanished entry just skips
            };
            self.victim_index.remove(v);
            if meta.level.is_slc() {
                self.stats.gc_runs_slc += 1;
            } else {
                self.stats.gc_runs_mlc += 1;
            }
            let mode = if self.blocks.is_slc_region(meta.addr) {
                CellMode::Slc
            } else {
                CellMode::Mlc
            };
            self.owners.clear_block(v);
            self.oob.remove(&v);
            match dev.try_erase(meta.addr, mode) {
                Ok(res) => {
                    batch.push(self.chip_of(meta.addr), FlashOpKind::Erase, res.latency_ns);
                    self.blocks.release(meta.addr);
                    reclaimed += 1;
                }
                Err(e) => {
                    // A failed pulse (EraseFailed) still occupied the chip;
                    // any other rejection issued no pulse. Either way the
                    // block is permanently retired instead of re-entering the
                    // pool — losing a block is recoverable, a panic is not.
                    if let FlashError::EraseFailed { latency_ns, .. } = e {
                        batch.push(self.chip_of(meta.addr), FlashOpKind::Erase, latency_ns);
                    }
                    self.bad_blocks.insert(v);
                    self.stats.retired_blocks += 1;
                    self.blocks.retire(meta.addr);
                }
            }
        }
        reclaimed
    }

    /// Hands out a fresh page at `level`, falling back down the hierarchy
    /// (paper: "lower level blocks can be instead selected only if no
    /// available block can be found"), and ultimately to the MLC region.
    /// If every pool is empty, the host stalls while fully-invalid blocks are
    /// reclaimed on the spot; a device genuinely full of valid data returns
    /// [`FtlError::OutOfSpace`].
    ///
    /// Returns the page and the level it actually landed at.
    pub fn take_page(
        &mut self,
        dev: &mut FlashDevice,
        level: BlockLevel,
        batch: &mut OpBatch,
    ) -> Result<(Ppa, BlockLevel), FtlError> {
        if let Some(x) = self.try_take_chain(level) {
            return Ok(x);
        }
        let limit = self.blocks.slc_total() + self.blocks.mlc_total();
        for _ in 0..limit {
            if self.emergency_reclaim(dev, batch) == 0 {
                break;
            }
            if let Some(x) = self.try_take_chain(level) {
                return Ok(x);
            }
        }
        Err(FtlError::OutOfSpace { level })
    }

    /// Programs `lsns` into `ppa` starting at subpage `start`, maintaining the
    /// map, owner table, metadata and statistics, and recording the operation.
    ///
    /// Old locations of the LSNs are invalidated. `kind` distinguishes host
    /// programs from GC relocations for both timing and statistics.
    ///
    /// On a media program failure the block is retired (its valid data is
    /// relocated by `FtlCore::retire_block`) and the group retries on a
    /// fresh page at the failed block's level, up to `MAX_PROGRAM_ATTEMPTS`
    /// placements. No mapping state mutates on a failed attempt — the
    /// injected failure leaves the target subpages free — so consistency
    /// holds at every exit.
    #[allow(clippy::too_many_arguments)] // the flash op tuple is irreducible here
    pub fn program_group(
        &mut self,
        dev: &mut FlashDevice,
        ppa: Ppa,
        start: u8,
        lsns: &[Lsn],
        kind: FlashOpKind,
        now: Nanos,
        batch: &mut OpBatch,
    ) -> Result<(), FtlError> {
        assert!(!lsns.is_empty());
        let mut ppa = ppa;
        let mut start = start;
        let mut attempts: u32 = 0;
        loop {
            let addr = ppa.block_addr();
            let block_idx = self.block_idx(addr);
            let follow_up = dev.block(addr).page(ppa.page).program_ops() > 0;

            match dev.program(Spa::new(ppa, start), lsns.len() as u8) {
                Ok(res) => {
                    batch.push(self.chip_of(addr), kind, res.latency_ns);

                    // Durable OOB shadow: what a real FTL writes into the
                    // page's spare area, read back at power-loss recovery.
                    let (level, opened_seq) = self
                        .meta
                        .get(block_idx)
                        .map(|m| (m.level, m.opened_seq()))
                        .unwrap_or((BlockLevel::HighDensity, 0));
                    let oob_slots = (self.geometry.pages_per_block_mlc
                        * self.geometry.subpages_per_page())
                        as usize;
                    let spp = self.geometry.subpages_per_page();
                    let oob = self.oob.entry(block_idx).or_insert_with(|| BlockOob {
                        level,
                        opened_seq,
                        tags: vec![None; oob_slots],
                    });
                    let base = (ppa.page * spp + start as u32) as usize;
                    for (i, &lsn) in lsns.iter().enumerate() {
                        if let Some(slot) = oob.tags.get_mut(base + i) {
                            *slot = Some(SubTag {
                                lsn,
                                written_ns: now.max(1),
                                follow_up,
                            });
                        }
                    }

                    for (i, &lsn) in lsns.iter().enumerate() {
                        let spa = Spa::new(ppa, start + i as u8);
                        if let Some(old) = self.map.insert(lsn, spa) {
                            // Superseded version: invalidate unless it was in
                            // this very erase cycle's victim (GC callers remap
                            // before erase, and the old block may be
                            // mid-teardown; invalidate is still safe because
                            // the subpage is valid until the erase). A
                            // rejection here means map and media already
                            // disagree — surface it as a failed write rather
                            // than tearing the process down.
                            dev.invalidate(old)?;
                            let old_idx = self.block_idx(old.ppa.block_addr());
                            self.owners.clear(old_idx, old);
                            self.note_invalidated(old_idx, old);
                        }
                        self.owners.set(block_idx, spa, lsn);
                    }

                    if let Some(meta) = self.meta.get_mut(block_idx) {
                        meta.note_program(ppa.page, start, lsns.len() as u8, now, follow_up);
                    }

                    if kind == FlashOpKind::HostProgram {
                        let level = self
                            .meta
                            .level(block_idx)
                            .unwrap_or(BlockLevel::HighDensity);
                        self.stats.note_host_program(level, lsns.len() as u32);
                    }
                    return Ok(());
                }
                Err(FlashError::ProgramFailed { latency_ns, .. }) => {
                    // The failed pulse occupied the chip; charge it, retire
                    // the block, and retry on a fresh page at the same level.
                    attempts += 1;
                    batch.push(self.chip_of(addr), kind, latency_ns);
                    let level = self
                        .meta
                        .level(block_idx)
                        .unwrap_or(BlockLevel::HighDensity);
                    self.retire_block(dev, block_idx, now, batch);
                    self.stats.program_retries += 1;
                    if attempts >= MAX_PROGRAM_ATTEMPTS {
                        return Err(FtlError::WriteFailed { attempts });
                    }
                    let (new_ppa, _) = self.take_page(dev, level, batch)?;
                    ppa = new_ppa;
                    start = 0;
                }
                // Rejected outright (mode/NOP violation): the placement logic
                // and the device disagree. Propagate instead of panicking.
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Permanently retires a block after a media program failure: removes it
    /// from active rings, relocates its remaining valid data, and strikes it
    /// from the allocation pools. Subpages whose relocation itself fails are
    /// counted as data loss and unmapped (a real drive would return read
    /// errors for them).
    fn retire_block(
        &mut self,
        dev: &mut FlashDevice,
        block_idx: u64,
        now: Nanos,
        batch: &mut OpBatch,
    ) {
        self.bad_blocks.insert(block_idx);
        self.stats.retired_blocks += 1;
        let Some(meta) = self.meta.get(block_idx) else {
            return;
        };
        let addr = meta.addr;
        let level = meta.level;
        for ring in self.actives.iter_mut() {
            ring.retain(|a| a.addr != addr);
        }
        for group in self.collect_victim_groups(dev, block_idx) {
            if self
                .relocate_group(dev, addr, &group, level, now, batch)
                .is_err()
            {
                for &(s, lsn) in group.subs() {
                    let spa = Spa::new(addr.page(group.page), s);
                    self.map.remove(lsn);
                    self.owners.clear(block_idx, spa);
                    if dev.invalidate(spa).is_ok() {
                        self.note_invalidated(block_idx, spa);
                    }
                    self.stats.data_loss_events += 1;
                }
            }
        }
        self.meta.close_block(block_idx);
        self.victim_index.remove(block_idx);
        self.oob.remove(&block_idx);
        self.owners.clear_block(block_idx);
        self.blocks.retire(addr);
    }

    /// Serves a host read request: looks up every logical subpage, merges
    /// physically-contiguous runs, reads them, and charges unmapped subpages
    /// as MLC-resident pre-trace data.
    ///
    /// Uncorrectable reads walk the device's read-retry ladder; data loss is
    /// accounted only when every retry step is exhausted. The Fig. 8 RBER
    /// average intentionally sums only the *initial* read of each run, so
    /// retry traffic never skews the paper's error-rate reproduction.
    pub fn host_read(
        &mut self,
        req: &IoRequest,
        dev: &mut FlashDevice,
        batch: &mut OpBatch,
    ) -> Result<(), FtlError> {
        self.stats.host_read_requests += 1;
        let spp = self.spp();

        // Build physical runs: (start spa, length) over consecutive LSNs.
        // The merge buffer is core-owned and reused across requests; the span
        // walk probes the mapping table once per LSN bucket, not per subpage.
        let mut runs = std::mem::take(&mut self.read_runs);
        let cap_before = runs.capacity();
        runs.clear();
        let mut unmapped: u32 = 0;
        let span = req.subpage_span();
        self.map
            .lookup_span(span.start, span.end, |_, loc| match loc {
                Some(spa) => {
                    if let Some((start, len)) = runs.last_mut() {
                        if start.ppa == spa.ppa && start.subpage + *len == spa.subpage && *len < spp
                        {
                            *len += 1;
                            return;
                        }
                    }
                    runs.push((spa, 1));
                }
                None => unmapped += 1,
            });
        if runs.capacity() != cap_before {
            self.stats.scratch_grows += 1;
        }

        let mut outcome: Result<(), FtlError> = Ok(());
        for &(spa, len) in runs.iter() {
            let chip = self.chip_of(spa.ppa.block_addr());
            let res = match dev.read(spa, len) {
                Ok(r) => r,
                Err(e) => {
                    outcome = Err(e.into());
                    break;
                }
            };
            batch.push(chip, FlashOpKind::HostRead, res.latency_ns);
            self.stats.host_read_rber_sum += res.rber * len as f64;
            self.stats.host_subpages_read += len as u64;
            if res.uncorrectable {
                self.stats.host_uncorrectable_reads += 1;
                self.walk_retry_ladder(dev, spa, len, chip, batch);
            }
        }
        self.read_runs = runs;
        outcome?;

        if unmapped > 0 && self.cfg.serve_unmapped_reads_from_mlc {
            self.charge_unmapped_read(dev, req, unmapped, batch);
        }
        Ok(())
    }

    /// Walks the read-retry ladder after an uncorrectable read: each step
    /// re-reads at a tighter reference voltage (modelled as an RBER scale
    /// plus a fixed latency penalty) until ECC decodes or the ladder runs
    /// dry. The batch status records recovery vs. loss for the host layer.
    fn walk_retry_ladder(
        &mut self,
        dev: &mut FlashDevice,
        spa: Spa,
        len: u8,
        chip: u32,
        batch: &mut OpBatch,
    ) {
        let _span = ipu_obs::span(ipu_obs::Phase::EccRetry);
        let steps = self.retry.steps.clone();
        for step in steps {
            self.stats.read_retries += 1;
            let res = match dev.read_scaled(spa, len, step.rber_scale) {
                Ok(r) => r,
                Err(_) => break,
            };
            let lat = res.latency_ns + step.extra_latency_ns;
            batch.push(chip, FlashOpKind::HostRead, lat);
            self.stats.retry_latency_ns += lat;
            if !res.uncorrectable {
                self.stats.recovered_reads += 1;
                batch.status.escalate(ReqStatus::Recovered);
                ipu_obs::event(ipu_obs::Phase::EccRetry, "read_recovered", lat);
                return;
            }
        }
        ipu_obs::event(ipu_obs::Phase::EccRetry, "read_exhausted", 0);
        self.stats.data_loss_events += 1;
        batch.status.escalate(ReqStatus::Failed);
    }

    /// Accounts a host write that ultimately failed (placement retries or
    /// physical space exhausted) and marks the request's completion status.
    pub fn note_write_failure(&mut self, _err: &FtlError, batch: &mut OpBatch) {
        self.stats.host_write_failures += 1;
        batch.status.escalate(ReqStatus::Failed);
    }

    /// Accounts a host read the device rejected outright and marks the
    /// request's completion status.
    pub fn note_read_failure(&mut self, _err: &FtlError, batch: &mut OpBatch) {
        self.stats.data_loss_events += 1;
        batch.status.escalate(ReqStatus::Failed);
    }

    /// Charges a read of `subpages` never-written subpages as if the data were
    /// resident in the MLC region since before the trace (no disturb history).
    fn charge_unmapped_read(
        &mut self,
        dev: &FlashDevice,
        req: &IoRequest,
        subpages: u32,
        batch: &mut OpBatch,
    ) {
        let cfg = dev.config();
        let bytes = subpages * cfg.geometry.subpage_size;
        let rber = cfg.ber.baseline_rber(cfg.initial_pe_cycles, CellMode::Mlc);
        let ecc = cfg.ecc.decode(bytes, rber);
        let latency =
            cfg.timing.read_ns(CellMode::Mlc) + cfg.timing.transfer_ns(bytes) + ecc.latency_ns;
        // Spread pre-trace data across chips deterministically by address.
        let chip = (req.first_lsn() % cfg.geometry.total_chips() as u64) as u32;
        batch.push(chip, FlashOpKind::UnmappedRead, latency);
        self.stats.unmapped_reads += 1;
        self.stats.host_read_rber_sum += rber * subpages as f64;
        self.stats.host_subpages_read += subpages as u64;
    }

    /// Advances pool bookkeeping to simulated time `now` (in-flight erases
    /// whose completion time has passed re-enter the free pools). Schemes
    /// call this at the top of every request.
    pub fn begin_request(&mut self, now: Nanos) {
        self.blocks.promote_ready(now);
    }

    /// Whether the SLC region wants GC: ready plus in-flight blocks below the
    /// *high* water mark (2× the trigger threshold — hysteresis keeps GC from
    /// oscillating on the bypass boundary).
    pub fn slc_gc_needed(&self) -> bool {
        self.blocks.slc_free_count() + self.blocks.slc_pending_count()
            < 2 * self.cfg.gc_threshold_blocks(self.blocks.slc_total())
    }

    /// Whether a new SLC GC round may start at `now` (the previous round has
    /// drained). GC rounds are serialized in time: replenishment is limited
    /// by real movement + erase latency, which is what lets sustained write
    /// pressure drain the ready pool and force the MLC bypass.
    pub fn slc_gc_gate_open(&self, now: Nanos) -> bool {
        now >= self.slc_gc_ready_at
    }

    /// Records the cost of a finished SLC GC round: the next round may start
    /// once this round's movement (parallelized over the chips) and its
    /// serialized erase complete.
    pub fn finish_slc_gc_round(&mut self, now: Nanos, round_cost: Nanos) {
        let movement = round_cost.saturating_sub(self.erase_ns);
        self.slc_gc_ready_at = now + self.erase_ns + movement / self.geometry.total_chips() as u64;
    }

    /// Same gate for the MLC region.
    pub fn mlc_gc_gate_open(&self, now: Nanos) -> bool {
        now >= self.mlc_gc_ready_at
    }

    fn finish_mlc_gc_round(&mut self, now: Nanos, round_cost: Nanos) {
        let movement = round_cost.saturating_sub(self.erase_ns);
        self.mlc_gc_ready_at = now + self.erase_ns + movement / self.geometry.total_chips() as u64;
    }

    /// Whether host writes should bypass the SLC cache right now: the *ready*
    /// pool has drained below the trigger threshold while erases are still in
    /// flight.
    pub fn slc_bypass_needed(&self) -> bool {
        self.blocks.slc_free_count() < self.cfg.gc_threshold_blocks(self.blocks.slc_total())
    }

    /// Hands out a page for a *host* write targeting `level`.
    ///
    /// When the SLC region's ready pool has drained (GC erases still in
    /// flight), host writes that would need a fresh SLC page are diverted
    /// straight to the MLC region — the standard hybrid-SSD bypass.
    /// Intra-page updates never come through here (they reuse an existing
    /// page), which is exactly how IPU keeps absorbing hot updates in the
    /// cache while Baseline/MGA writes spill to slow MLC programs (Figure 6).
    pub fn take_host_page(
        &mut self,
        dev: &mut FlashDevice,
        level: BlockLevel,
        batch: &mut OpBatch,
    ) -> Result<(Ppa, BlockLevel), FtlError> {
        if level.is_slc() && self.slc_bypass_needed() {
            self.take_page(dev, BlockLevel::HighDensity, batch)
        } else {
            self.take_page(dev, level, batch)
        }
    }

    /// Whether the MLC region's free pool is below the GC threshold.
    pub fn mlc_gc_needed(&self) -> bool {
        self.blocks.mlc_free_count() + self.blocks.mlc_pending_count()
            < self.cfg.gc_threshold_blocks(self.blocks.mlc_total())
    }

    /// Collects the valid data of a victim block into `out` (cleared first),
    /// grouped per page. Reusing a caller-owned buffer keeps GC rounds free
    /// of per-round heap allocation — schemes take/put-back the core's
    /// `gc_groups` scratch around their victim loops.
    pub fn collect_victim_groups_into(
        &self,
        dev: &FlashDevice,
        block_idx: u64,
        out: &mut Vec<PageGroup>,
    ) {
        out.clear();
        let block = dev.block_by_index(block_idx);
        let Some(meta) = self.meta.get(block_idx) else {
            return; // untracked block has no cache-resident data to move
        };
        for p in 0..block.page_count() {
            let page = block.page(p);
            let mut subs = [(0u8, 0 as Lsn); MAX_SUBPAGES_PER_PAGE];
            let mut subs_len = 0u8;
            for s in 0..page.subpage_count() {
                if page.subpage(s) == SubpageState::Valid {
                    let spa = Spa::new(meta.addr.page(p), s);
                    let lsn = self
                        .owners
                        .owner(block_idx, spa)
                        // ipu-lint: allow(panic-reachability) — owner/map agreement is the core FTL invariant (cross-checked by check_invariants); a valid subpage without an owner is unrecoverable corruption
                        .expect("valid subpage must have an owner");
                    subs[subs_len as usize] = (s, lsn);
                    subs_len += 1;
                }
            }
            if subs_len > 0 {
                out.push(PageGroup {
                    page: p,
                    updated: meta.page_updated(p),
                    subs_len,
                    subs,
                });
            }
        }
    }

    /// Allocating form of [`Self::collect_victim_groups_into`] (rare paths:
    /// block retirement, scrub).
    pub fn collect_victim_groups(&self, dev: &FlashDevice, block_idx: u64) -> Vec<PageGroup> {
        let mut groups = Vec::new();
        self.collect_victim_groups_into(dev, block_idx, &mut groups);
        groups
    }

    /// Relocates one page group to `dest_level`: reads the valid subpages and
    /// programs them (compacted) into a fresh page at the destination.
    ///
    /// An error leaves the victim's remaining subpages valid and mapped —
    /// callers must abort the victim's erase, never tear down partially-moved
    /// data.
    pub fn relocate_group(
        &mut self,
        dev: &mut FlashDevice,
        victim_addr: BlockAddr,
        group: &PageGroup,
        dest_level: BlockLevel,
        now: Nanos,
        batch: &mut OpBatch,
    ) -> Result<(), FtlError> {
        // Read contiguous runs of the valid subpages.
        let page_ppa = victim_addr.page(group.page);
        let chip = self.chip_of(victim_addr);
        let subs = group.subs();
        let mut i = 0;
        while i < subs.len() {
            let run_start = subs[i].0;
            let mut len = 1u8;
            while i + (len as usize) < subs.len() && subs[i + len as usize].0 == run_start + len {
                len += 1;
            }
            let res = dev.read(Spa::new(page_ppa, run_start), len)?;
            batch.push(chip, FlashOpKind::GcRead, res.latency_ns);
            i += len as usize;
        }

        // Program compacted into the destination. Under pool pressure,
        // SLC-bound relocations shed straight to MLC: recycling scarce SLC
        // blocks for GC movement while host writes are bypassing would turn
        // the cache over on itself.
        let dest_level = if dest_level.is_slc() && self.slc_bypass_needed() {
            BlockLevel::HighDensity
        } else {
            dest_level
        };
        let mut lsns = [0 as Lsn; MAX_SUBPAGES_PER_PAGE];
        for (i, &(_, l)) in subs.iter().enumerate() {
            lsns[i] = l;
        }
        let lsns = &lsns[..subs.len()];
        let (dest_ppa, actual_level) = self.take_page(dev, dest_level, batch)?;
        self.program_group(dev, dest_ppa, 0, lsns, FlashOpKind::GcProgram, now, batch)?;

        self.stats.gc_moved_subpages += lsns.len() as u64;
        if !actual_level.is_slc() {
            self.stats.gc_evicted_subpages += lsns.len() as u64;
        }
        Ok(())
    }

    /// Finishes a GC: records Figure 9 utilization, erases the victim back
    /// into its region's mode and schedules its return to the free pool for
    /// when the erase completes (`now` + erase latency).
    pub fn erase_victim(
        &mut self,
        dev: &mut FlashDevice,
        block_idx: u64,
        now: Nanos,
        batch: &mut OpBatch,
    ) {
        let Some(meta) = self.meta.close_block(block_idx) else {
            debug_assert!(false, "erase_victim on untracked block {block_idx}");
            return;
        };
        self.victim_index.remove(block_idx);
        let addr = meta.addr;
        let block = dev.block_by_index(block_idx);
        let total = block.total_subpages();
        let used = total - block.count_subpages(SubpageState::Free);
        if meta.level.is_slc() {
            self.stats.gc_victim_used_subpages += used as u64;
            self.stats.gc_victim_total_subpages += total as u64;
            self.stats.gc_runs_slc += 1;
        } else {
            self.stats.gc_runs_mlc += 1;
        }

        let mode = if self.blocks.is_slc_region(addr) {
            CellMode::Slc
        } else {
            CellMode::Mlc
        };
        self.owners.clear_block(block_idx);
        self.oob.remove(&block_idx);
        match dev.try_erase(addr, mode) {
            Ok(res) => {
                batch.push(self.chip_of(addr), FlashOpKind::Erase, res.latency_ns);
                self.blocks.release_at(addr, now + res.latency_ns);
                if self.wear_leveler.note_erase(&self.cfg.wear_leveling) {
                    self.wl_check_due = true;
                }
            }
            Err(e) => {
                // A failed pulse (EraseFailed) still occupied the chip; any
                // other rejection issued no pulse. The victim (already fully
                // relocated) is retired instead of rejoining the pool —
                // losing a block is recoverable, a panic is not.
                if let FlashError::EraseFailed { latency_ns, .. } = e {
                    batch.push(self.chip_of(addr), FlashOpKind::Erase, latency_ns);
                }
                self.bad_blocks.insert(block_idx);
                self.stats.retired_blocks += 1;
                self.blocks.retire(addr);
            }
        }
    }

    /// Runs one static wear-leveling migration if a check is due and the
    /// wear gap in the SLC region exceeds the configured threshold: the data
    /// of the *least-worn* in-use block is relocated at its own level and the
    /// block (rich in remaining endurance) rejoins the free pool to absorb
    /// the hot write stream.
    pub fn run_wear_leveling_if_due(
        &mut self,
        dev: &mut FlashDevice,
        now: Nanos,
        batch: &mut OpBatch,
    ) {
        if !std::mem::take(&mut self.wl_check_due) {
            return;
        }
        let _span = ipu_obs::span(ipu_obs::Phase::Migration);
        // Least-worn in-use (non-active) SLC block.
        let mut coldest: Option<(u32, u64)> = None;
        for (i, m) in self.meta.slc_blocks() {
            if self.is_active(m.addr) {
                continue;
            }
            let pe = dev.wear().pe_cycles(i);
            if coldest.is_none_or(|(cpe, _)| pe < cpe) {
                coldest = Some((pe, i));
            }
        }
        let Some((min_pe, victim)) = coldest else {
            return;
        };
        // Most-worn block anywhere in the SLC region.
        let max_pe = self
            .blocks
            .slc_region_blocks()
            .iter()
            .map(|a| dev.wear().pe_cycles(self.geometry.block_index(*a)))
            .max()
            .unwrap_or(min_pe);
        if !WearLeveler::gap_exceeded(&self.cfg.wear_leveling, min_pe, max_pe) {
            return;
        }
        let Some(victim_meta) = self.meta.get(victim) else {
            return; // candidate scan raced with a close; skip this check
        };
        batch.begin_background_round(RoundOrigin::WearLevel);
        let victim_addr = victim_meta.addr;
        let level = victim_meta.level;
        let mut groups = std::mem::take(&mut self.gc_groups);
        let groups_cap = groups.capacity();
        self.collect_victim_groups_into(dev, victim, &mut groups);
        let mut stalled = false;
        for group in &groups {
            if self
                .relocate_group(dev, victim_addr, group, level, now, batch)
                .is_err()
            {
                // Movement stalled (space or media): abandon this migration
                // without erasing — the un-moved data is still valid in place.
                stalled = true;
                break;
            }
        }
        if groups.capacity() != groups_cap {
            self.stats.scratch_grows += 1;
        }
        self.gc_groups = groups;
        if stalled {
            return;
        }
        self.erase_victim(dev, victim, now, batch);
        self.stats.wear_leveling_migrations += 1;
        ipu_obs::event(ipu_obs::Phase::Migration, "wear_level_migration", victim);
    }

    /// Exhaustively cross-checks logical and physical state; returns the
    /// first violation found. Intended for tests and debugging — it walks the
    /// whole device, so do not call it on a hot path.
    ///
    /// Checked invariants:
    /// 1. every mapped LSN points at a physically *valid* subpage,
    /// 2. the owner table agrees with the forward map in both directions,
    /// 3. every valid subpage on the device is owned by a mapped LSN,
    /// 4. per-block subpage accounting conserves (free + valid + invalid).
    pub fn check_invariants(&self, dev: &FlashDevice) -> Result<(), String> {
        // 1 & 2 (forward direction).
        for (lsn, spa) in self.map.iter() {
            let block = dev.block(spa.ppa.block_addr());
            if spa.ppa.page >= block.page_count() {
                return Err(format!("lsn {lsn} maps to out-of-range page {}", spa.ppa));
            }
            let state = block.page(spa.ppa.page).subpage(spa.subpage);
            if state != SubpageState::Valid {
                return Err(format!("lsn {lsn} maps to {state:?} subpage at {spa}"));
            }
            let bi = self.block_idx(spa.ppa.block_addr());
            match self.owners.owner(bi, spa) {
                Some(owner) if owner == lsn => {}
                other => {
                    return Err(format!(
                        "owner table says {other:?} for {spa}, map says lsn {lsn}"
                    ))
                }
            }
        }
        // 3 & 4 (reverse direction + conservation).
        let mut device_valid = 0u64;
        for i in 0..self.geometry.total_blocks() {
            let block = dev.block_by_index(i);
            let total = block.total_subpages();
            let sum = block.count_subpages(SubpageState::Free)
                + block.count_subpages(SubpageState::Valid)
                + block.count_subpages(SubpageState::Invalid);
            if total != sum {
                return Err(format!(
                    "block {i}: subpage accounting {sum} != total {total}"
                ));
            }
            for p in 0..block.page_count() {
                let page = block.page(p);
                for sub in 0..page.subpage_count() {
                    if page.subpage(sub) == SubpageState::Valid {
                        device_valid += 1;
                        let addr = self.geometry.block_from_index(i);
                        let spa = Spa::new(addr.page(p), sub);
                        let Some(owner) = self.owners.owner(i, spa) else {
                            return Err(format!("valid subpage {spa} has no owner"));
                        };
                        if self.map.lookup(owner) != Some(spa) {
                            return Err(format!(
                                "valid subpage {spa} owned by lsn {owner}, which maps elsewhere"
                            ));
                        }
                    }
                }
            }
        }
        if device_valid != self.map.len() as u64 {
            return Err(format!(
                "device holds {device_valid} valid subpages but {} LSNs are mapped",
                self.map.len()
            ));
        }
        // 5: cached per-block counters agree with a recount.
        for i in 0..self.geometry.total_blocks() {
            if !dev.block_by_index(i).counters_consistent() {
                return Err(format!("block {i}: cached subpage counters diverged"));
            }
        }
        // 6: metadata validity mirrors the device, aggregates are consistent,
        // and the victim index tracks exactly the in-use SLC blocks with the
        // device's invalid-subpage count as its cached score.
        let mut indexed = 0usize;
        for (i, m) in self.meta.iter() {
            if !m.aggregates_consistent() {
                return Err(format!("block {i}: meta validity aggregates diverged"));
            }
            let block = dev.block_by_index(i);
            for p in 0..block.page_count() {
                let page = block.page(p);
                for s in 0..page.subpage_count() {
                    let on_device = page.subpage(s) == SubpageState::Valid;
                    if m.valid_at(p, s) != on_device {
                        return Err(format!(
                            "block {i} page {p} sub {s}: meta valid={} device valid={on_device}",
                            m.valid_at(p, s)
                        ));
                    }
                }
            }
            if m.level.is_slc() {
                indexed += 1;
                let expect = greedy_score(block, GcGranularity::Subpage);
                match self.victim_index.score_of(i) {
                    Some(score) if score as u64 == expect => {}
                    other => {
                        return Err(format!(
                            "block {i}: victim index score {other:?}, device says {expect}"
                        ))
                    }
                }
            } else if self.victim_index.contains(i) {
                return Err(format!("MLC block {i} is in the SLC victim index"));
            }
        }
        if self.victim_index.len() != indexed {
            return Err(format!(
                "victim index tracks {} blocks, {} SLC blocks in use",
                self.victim_index.len(),
                indexed
            ));
        }
        Ok(())
    }

    /// Runs MLC-region GC (greedy, subpage-granular compaction within MLC)
    /// until the region is back above threshold. MLC blocks accumulate
    /// invalid subpages as cached data gets re-written and re-evicted.
    pub fn run_mlc_gc_if_needed(&mut self, dev: &mut FlashDevice, now: Nanos, batch: &mut OpBatch) {
        let mut rounds = 0;
        while self.mlc_gc_needed() && self.mlc_gc_gate_open(now) && rounds < 8 {
            let _span = ipu_obs::span(ipu_obs::Phase::Gc);
            batch.begin_background_round(RoundOrigin::Gc);
            rounds += 1;
            let cost_before = batch.total_latency_sum();
            let victim = {
                let cands = self
                    .meta
                    .mlc_blocks()
                    .filter(|(_, m)| !self.is_active(m.addr))
                    .map(|(i, m)| (i, dev.block_by_index(i), m.opened_seq()));
                select_greedy(cands, GcGranularity::Subpage)
            };
            let Some(victim) = victim else { break };
            let Some(victim_addr) = self.meta.get(victim).map(|m| m.addr) else {
                break;
            };
            let mut groups = std::mem::take(&mut self.gc_groups);
            let groups_cap = groups.capacity();
            self.collect_victim_groups_into(dev, victim, &mut groups);
            let mut aborted = false;
            for group in &groups {
                if self
                    .relocate_group(dev, victim_addr, group, BlockLevel::HighDensity, now, batch)
                    .is_err()
                {
                    aborted = true;
                    break;
                }
            }
            if groups.capacity() != groups_cap {
                self.stats.scratch_grows += 1;
            }
            self.gc_groups = groups;
            if aborted {
                // Un-moved data is still valid in place; never erase a
                // partially-relocated victim.
                break;
            }
            self.erase_victim(dev, victim, now, batch);
            let round_cost = batch.total_latency_sum() - cost_before;
            self.finish_mlc_gc_round(now, round_cost);
        }
    }

    /// Background scrub/refresh: scans a bounded window of in-use SLC blocks
    /// (round-robin across requests) and rewrites pages whose accumulated
    /// disturb pushes any valid subpage's expected raw bit errors past the
    /// configured fraction of ECC capability. Off by default
    /// (`ScrubConfig::enabled`), so the paper's figures are unaffected.
    pub fn run_scrub_if_due(&mut self, dev: &mut FlashDevice, now: Nanos, batch: &mut OpBatch) {
        if !self.cfg.scrub.enabled {
            return;
        }
        let _span = ipu_obs::span(ipu_obs::Phase::Migration);
        batch.begin_background_round(RoundOrigin::Scrub);
        let subpage_size = self.geometry.subpage_size;
        let watermark =
            self.cfg.scrub.rber_watermark * dev.config().ecc.correctable_bits(subpage_size) as f64;
        let bits_per_subpage = (subpage_size * 8) as f64;

        let mut slc: Vec<u64> = self.meta.slc_blocks().map(|(i, _)| i).collect();
        slc.sort_unstable();
        if slc.is_empty() {
            return;
        }
        let offset = (self.scrub_cursor % slc.len() as u64) as usize;
        let mut rewrites = 0u32;
        for k in 0..slc.len().min(SCRUB_BLOCKS_PER_PASS) {
            let block_idx = slc[(offset + k) % slc.len()];
            self.scrub_cursor = self.scrub_cursor.wrapping_add(1);
            let Some(meta) = self.meta.get(block_idx) else {
                continue;
            };
            let addr = meta.addr;
            let level = meta.level;
            if self.is_active(addr) {
                continue;
            }
            // Pages where any valid subpage is past the watermark.
            let block = dev.block_by_index(block_idx);
            let mut hot_pages: Vec<u32> = Vec::new();
            for p in 0..block.page_count() {
                let page = block.page(p);
                for s in 0..page.subpage_count() {
                    if page.subpage(s) == SubpageState::Valid {
                        let spa = Spa::new(addr.page(p), s);
                        if dev.effective_rber(spa) * bits_per_subpage > watermark {
                            hot_pages.push(p);
                            break;
                        }
                    }
                }
            }
            if hot_pages.is_empty() {
                continue;
            }
            let groups = self.collect_victim_groups(dev, block_idx);
            for g in groups.iter().filter(|g| hot_pages.contains(&g.page)) {
                if rewrites >= self.cfg.scrub.max_pages_per_pass
                    || self
                        .relocate_group(dev, addr, g, level, now, batch)
                        .is_err()
                {
                    return;
                }
                self.stats.scrub_rewrites += 1;
                rewrites += 1;
            }
        }
    }

    /// Rebuilds all volatile FTL state from durable flash contents after a
    /// power loss: the mapping table, owner table and cache metadata are
    /// reconstructed from the per-block OOB shadow (level, open order, and
    /// per-subpage LSN tags), and the free pools are re-derived from which
    /// blocks hold data. The bad-block table is durable and survives as-is.
    ///
    /// Divergences from the pre-cut state, by design: active blocks are
    /// closed (their remaining free pages are not resumed — a real FTL
    /// re-opens fresh blocks), in-flight erases complete instantly (the
    /// device already erased them), and GC/wear-leveling pacing restarts.
    pub fn rebuild_from_flash(&mut self, dev: &FlashDevice) {
        self.map = MappingTable::new();
        self.owners = OwnerTable::new(&self.geometry);
        self.meta = CacheMeta::new();
        self.actives = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        self.rr = [0; 4];
        self.slc_gc_ready_at = 0;
        self.mlc_gc_ready_at = 0;
        self.wear_leveler = WearLeveler::new();
        self.wl_check_due = false;
        self.scrub_cursor = 0;

        // Replay OOB records in open order so ISR GC's FIFO tie-breaking is
        // preserved across the power cycle.
        let oob = std::mem::take(&mut self.oob);
        let mut entries: Vec<(u64, BlockOob)> = oob.into_iter().collect();
        entries.sort_by_key(|&(idx, ref b)| (b.opened_seq, idx));
        let mut max_seq: Option<u64> = None;
        for (idx, blk) in &entries {
            let idx = *idx;
            let addr = self.geometry.block_from_index(idx);
            let block = dev.block_by_index(idx);
            let meta = self.meta.restore_block(
                idx,
                addr,
                blk.level,
                blk.opened_seq,
                block.page_count(),
                self.geometry.subpages_per_page(),
            );
            max_seq = Some(max_seq.map_or(blk.opened_seq, |m| m.max(blk.opened_seq)));
            // Ascending slot order is (page, subpage) order.
            for (page, sub, tag) in blk.iter_tags(self.geometry.subpages_per_page()) {
                meta.restore_program(page, sub, tag.written_ns, tag.follow_up);
                // Only *valid* subpages re-enter the map: the OOB tag of a
                // superseded subpage is stale by definition.
                if block.page(page).subpage(sub) == SubpageState::Valid {
                    let spa = Spa::new(addr.page(page), sub);
                    self.map.insert(tag.lsn, spa);
                    self.owners.set(idx, spa, tag.lsn);
                }
            }
        }
        self.meta.set_next_seq(max_seq.map_or(0, |m| m + 1));
        self.oob = entries.into_iter().collect();

        // Replay restored every OOB tag as a program, including superseded
        // subpages: reconcile the metadata's validity aggregates with the
        // device (which knows which subpages are actually invalid), then
        // rebuild the victim index from the device's invalid counts.
        self.victim_index.clear();
        let in_use: BTreeSet<u64> = self.meta.iter().map(|(i, _)| i).collect();
        for &idx in &in_use {
            let block = dev.block_by_index(idx);
            for p in 0..block.page_count() {
                let page = block.page(p);
                for s in 0..page.subpage_count() {
                    if page.subpage(s) == SubpageState::Invalid {
                        if let Some(m) = self.meta.get_mut(idx) {
                            m.note_invalidate(p, s);
                        }
                    }
                }
            }
            if self.meta.level(idx).is_some_and(|l| l.is_slc()) {
                let seq = self.meta.get(idx).map_or(0, |m| m.opened_seq());
                let score = greedy_score(block, GcGranularity::Subpage) as u32;
                self.victim_index.insert(idx, seq, score);
            }
        }
        self.blocks.rebuild_free(&self.bad_blocks, &in_use);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipu_flash::DeviceConfig;
    use ipu_trace::OpKind;

    fn core_and_dev() -> (FtlCore, FlashDevice) {
        let mut dev = FlashDevice::new(DeviceConfig::small_for_tests());
        let core = FtlCore::new(&mut dev, FtlConfig::default());
        (core, dev)
    }

    #[test]
    fn new_core_formats_slc_region() {
        let (core, dev) = core_and_dev();
        let mut slc = 0;
        for i in 0..dev.config().geometry.total_blocks() {
            if dev.block_by_index(i).mode() == CellMode::Slc {
                slc += 1;
            }
        }
        assert_eq!(slc, core.blocks.slc_total());
        assert_eq!(slc, 2);
    }

    #[test]
    fn chunks_split_on_page_boundaries() {
        let (core, _) = core_and_dev();
        // 64 KB at offset 0: 16 subpages → 4 chunks of 4.
        let big = IoRequest::new(0, OpKind::Write, 0, 65536);
        let chunks = core.chunks(&big);
        assert_eq!(chunks.len(), 4);
        assert!(chunks.iter().all(|c| c.len() == 4));
        assert_eq!(chunks[0], vec![0, 1, 2, 3]);
        assert_eq!(chunks[3], vec![12, 13, 14, 15]);

        // 8 KB straddling a page boundary: subpages 3 and 4 → two chunks.
        let straddle = IoRequest::new(0, OpKind::Write, 3 * 4096, 8192);
        let chunks = core.chunks(&straddle);
        assert_eq!(chunks, vec![vec![3], vec![4]]);
    }

    #[test]
    fn take_page_allocates_sequentially_then_new_block() {
        let (mut core, mut dev) = core_and_dev();
        let mut tb = OpBatch::new();
        let (p0, l0) = core.take_page(&mut dev, BlockLevel::Work, &mut tb).unwrap();
        let (p1, _) = core.take_page(&mut dev, BlockLevel::Work, &mut tb).unwrap();
        assert_eq!(l0, BlockLevel::Work);
        assert_eq!(p0.block_addr(), p1.block_addr());
        assert_eq!(p0.page, 0);
        assert_eq!(p1.page, 1);

        // Exhaust the 4-page SLC block; the next page comes from a new block.
        core.take_page(&mut dev, BlockLevel::Work, &mut tb).unwrap();
        core.take_page(&mut dev, BlockLevel::Work, &mut tb).unwrap();
        let (p4, l4) = core.take_page(&mut dev, BlockLevel::Work, &mut tb).unwrap();
        assert_ne!(p4.block_addr(), p0.block_addr());
        assert_eq!(l4, BlockLevel::Work);
        assert_eq!(core.blocks.slc_free_count(), 0);
    }

    #[test]
    fn take_page_falls_back_to_mlc_when_slc_exhausted() {
        let (mut core, mut dev) = core_and_dev();
        let mut tb = OpBatch::new();
        // Drain both SLC blocks (2 blocks × 4 pages).
        for _ in 0..8 {
            let (_, l) = core.take_page(&mut dev, BlockLevel::Work, &mut tb).unwrap();
            assert_eq!(l, BlockLevel::Work);
        }
        let (ppa, l) = core.take_page(&mut dev, BlockLevel::Work, &mut tb).unwrap();
        assert_eq!(l, BlockLevel::HighDensity);
        assert!(!core.blocks.is_slc_region(ppa.block_addr()));
    }

    #[test]
    fn hot_level_falls_back_through_lower_levels() {
        let (mut core, mut dev) = core_and_dev();
        let mut tb = OpBatch::new();
        // One SLC block to Hot; one to Work; Hot's block fills, then the next
        // Hot request must land in Work's open block before going to MLC.
        for _ in 0..4 {
            assert_eq!(
                core.take_page(&mut dev, BlockLevel::Hot, &mut tb)
                    .unwrap()
                    .1,
                BlockLevel::Hot
            );
        }
        assert_eq!(
            core.take_page(&mut dev, BlockLevel::Work, &mut tb)
                .unwrap()
                .1,
            BlockLevel::Work
        );
        // Hot is full and no free SLC blocks remain; falls back to Work.
        assert_eq!(
            core.take_page(&mut dev, BlockLevel::Hot, &mut tb)
                .unwrap()
                .1,
            BlockLevel::Work
        );
    }

    #[test]
    fn program_group_maintains_map_and_owners() {
        let (mut core, mut dev) = core_and_dev();
        let mut tb = OpBatch::new();
        let mut batch = OpBatch::new();
        let (ppa, _) = core.take_page(&mut dev, BlockLevel::Work, &mut tb).unwrap();
        core.program_group(
            &mut dev,
            ppa,
            0,
            &[10, 11],
            FlashOpKind::HostProgram,
            5,
            &mut batch,
        )
        .unwrap();

        assert_eq!(core.map.lookup(10), Some(Spa::new(ppa, 0)));
        assert_eq!(core.map.lookup(11), Some(Spa::new(ppa, 1)));
        let bi = core.block_idx(ppa.block_addr());
        assert_eq!(core.owners.owner(bi, Spa::new(ppa, 0)), Some(10));
        assert_eq!(core.stats.host_subpages_to_slc, 2);
        assert_eq!(batch.ops.len(), 1);
        assert_eq!(batch.ops[0].kind, FlashOpKind::HostProgram);

        // Re-write lsn 10: old location invalidated, owners updated.
        let (ppa2, _) = core.take_page(&mut dev, BlockLevel::Work, &mut tb).unwrap();
        core.program_group(
            &mut dev,
            ppa2,
            0,
            &[10],
            FlashOpKind::HostProgram,
            6,
            &mut batch,
        )
        .unwrap();
        assert_eq!(core.map.lookup(10), Some(Spa::new(ppa2, 0)));
        assert!(core.owners.owner(bi, Spa::new(ppa, 0)).is_none());
        assert_eq!(
            dev.block(ppa.block_addr()).page(ppa.page).subpage(0),
            SubpageState::Invalid
        );
    }

    #[test]
    fn host_read_merges_contiguous_runs() {
        let (mut core, mut dev) = core_and_dev();
        let mut tb = OpBatch::new();
        let mut batch = OpBatch::new();
        let (ppa, _) = core.take_page(&mut dev, BlockLevel::Work, &mut tb).unwrap();
        core.program_group(
            &mut dev,
            ppa,
            0,
            &[0, 1, 2, 3],
            FlashOpKind::HostProgram,
            0,
            &mut batch,
        )
        .unwrap();

        let mut rbatch = OpBatch::new();
        let req = IoRequest::new(1, OpKind::Read, 0, 16384);
        core.host_read(&req, &mut dev, &mut rbatch).unwrap();
        // All four subpages contiguous in one page → exactly one read op.
        assert_eq!(rbatch.count(FlashOpKind::HostRead), 1);
        assert_eq!(core.stats.host_subpages_read, 4);
        assert!(core.stats.host_read_rber_sum > 0.0);
    }

    #[test]
    fn unmapped_reads_are_charged_as_mlc() {
        let (mut core, mut dev) = core_and_dev();
        let mut batch = OpBatch::new();
        let req = IoRequest::new(0, OpKind::Read, 1 << 20, 8192);
        core.host_read(&req, &mut dev, &mut batch).unwrap();
        assert_eq!(batch.count(FlashOpKind::UnmappedRead), 1);
        assert_eq!(core.stats.unmapped_reads, 1);
        assert_eq!(core.stats.host_subpages_read, 2);
        // Costs at least the MLC cell read.
        assert!(batch.ops[0].latency_ns >= dev.config().timing.read_ns(CellMode::Mlc));
    }

    #[test]
    fn gc_cycle_relocates_and_erases() {
        let (mut core, mut dev) = core_and_dev();
        let mut tb = OpBatch::new();
        let mut batch = OpBatch::new();

        // Fill one Work block with two pages: one fully valid, one half stale.
        let (p0, _) = core.take_page(&mut dev, BlockLevel::Work, &mut tb).unwrap();
        core.program_group(
            &mut dev,
            p0,
            0,
            &[0, 1, 2, 3],
            FlashOpKind::HostProgram,
            1,
            &mut batch,
        )
        .unwrap();
        let (p1, _) = core.take_page(&mut dev, BlockLevel::Work, &mut tb).unwrap();
        core.program_group(
            &mut dev,
            p1,
            0,
            &[8, 9],
            FlashOpKind::HostProgram,
            2,
            &mut batch,
        )
        .unwrap();
        // Supersede lsn 8 elsewhere → p1 keeps one valid subpage.
        let (p2, _) = core.take_page(&mut dev, BlockLevel::Work, &mut tb).unwrap();
        core.program_group(
            &mut dev,
            p2,
            0,
            &[8],
            FlashOpKind::HostProgram,
            3,
            &mut batch,
        )
        .unwrap();

        let victim_idx = core.block_idx(p0.block_addr());
        let groups = core.collect_victim_groups(&dev, victim_idx);
        assert_eq!(groups.len(), 3); // pages 0,1,2 all hold valid data
        let total_valid: usize = groups.iter().map(|g| g.subs().len()).sum();
        assert_eq!(total_valid, 4 + 1 + 1);

        // Relocate everything to MLC and erase.
        let victim_addr = p0.block_addr();
        for g in &groups {
            core.relocate_group(
                &mut dev,
                victim_addr,
                g,
                BlockLevel::HighDensity,
                10,
                &mut batch,
            )
            .unwrap();
        }
        core.erase_victim(&mut dev, victim_idx, 10, &mut batch);

        // Mapping intact: every LSN still resolves, now in MLC.
        for lsn in [0u64, 1, 2, 3, 8, 9] {
            let spa = core.map.lookup(lsn).unwrap();
            assert!(
                !core.blocks.is_slc_region(spa.ppa.block_addr()),
                "lsn {lsn} still in SLC"
            );
        }
        assert_eq!(core.stats.gc_moved_subpages, 6);
        assert_eq!(core.stats.gc_evicted_subpages, 6);
        assert_eq!(core.stats.gc_runs_slc, 1);
        // Fig. 9 accounting: victim had 3 programmed pages (12 subpages used
        // counting the invalid one... p0 block: page0 4 + page1 2 + page2 1 = 7? No:
        // used counts *programmed* subpages (valid+invalid) = 4 + 2 + 1 = 7.
        assert_eq!(core.stats.gc_victim_used_subpages, 7);
        assert_eq!(core.stats.gc_victim_total_subpages, 16);
        // Only one SLC block was ever allocated (p0..p2 share it). The erase
        // stays in flight until its latency elapses; once promoted, both
        // region blocks are free again.
        assert_eq!(core.blocks.slc_free_count(), 1);
        assert_eq!(core.blocks.slc_pending_count(), 1);
        core.begin_request(10 + dev.config().timing.erase_ns());
        assert_eq!(core.blocks.slc_free_count(), 2);
        assert_eq!(core.blocks.slc_pending_count(), 0);
        assert_eq!(batch.count(FlashOpKind::Erase), 1);
    }
}

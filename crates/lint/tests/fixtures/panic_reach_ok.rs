//! Fixture: host-reachable code that propagates errors instead of panicking.

pub struct Fixture;

impl FtlScheme for Fixture {
    fn ok_fallible(&mut self, v: Option<u32>) -> Result<u32, String> {
        v.ok_or_else(|| "missing".to_string())
    }

    fn ok_let_else(&mut self, v: &[u32]) -> u32 {
        let Some(&first) = v.first() else {
            return 0;
        };
        first
    }

    fn ok_match_without_indexing(&mut self, v: &[u32], flag: bool) -> u32 {
        match flag {
            true => v.first().copied().unwrap_or(0),
            false => 0,
        }
    }
}

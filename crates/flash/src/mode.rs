//! Cell operating modes.
//!
//! The paper's device is a *hybrid* high-density SSD: all blocks are physically
//! MLC, but a configurable fraction (5% in Table 2) is operated in SLC-mode,
//! storing one bit per cell. SLC-mode halves the page count of a block (64 vs
//! 128 pages in Table 2) in exchange for lower latency, far better endurance and
//! lower raw bit error rates. Partial programming is only applied to SLC-mode
//! pages — multi-level cells cannot safely be re-programmed without an erase.

use serde::{Deserialize, Serialize};

/// Operating mode of a flash block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellMode {
    /// Single-level-cell mode: one bit per cell. Used for the cache region.
    Slc,
    /// Multi-level-cell mode: two bits per cell. The native high-density mode.
    #[default]
    Mlc,
}

impl CellMode {
    /// Whether partial (subpage) programming is permitted in this mode.
    ///
    /// Manufacturers only specify NOP > 1 (number of partial programs) for
    /// SLC-mode pages; re-programming an MLC page corrupts the paired page.
    #[inline]
    pub fn supports_partial_programming(self) -> bool {
        matches!(self, CellMode::Slc)
    }

    /// Short lowercase label used in reports ("slc" / "mlc").
    pub fn label(self) -> &'static str {
        match self {
            CellMode::Slc => "slc",
            CellMode::Mlc => "mlc",
        }
    }
}

impl std::fmt::Display for CellMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_slc_supports_partial_programming() {
        assert!(CellMode::Slc.supports_partial_programming());
        assert!(!CellMode::Mlc.supports_partial_programming());
    }

    #[test]
    fn labels_render() {
        assert_eq!(CellMode::Slc.to_string(), "slc");
        assert_eq!(CellMode::Mlc.to_string(), "mlc");
    }
}

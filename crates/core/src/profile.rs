//! Deterministic wall-clock benchmark harness: the repo's perf baseline.
//!
//! [`run_profile`] replays a fixed trace × scheme workload with the `ipu-obs`
//! instrumentation armed and measures where real (wall-clock) time goes:
//! per-phase exclusive seconds, per-run throughput in simulated operations
//! per wall second, and a monotonic counter fingerprint of the simulated
//! work. The result serializes as `BENCH_profile.json`, which CI's
//! `perf-gate` job diffs against `ci/bench_baseline.json` — the counter
//! fingerprint proves baseline and candidate simulated the *same* workload
//! before their throughputs are compared.
//!
//! Runs are sequential (never `parallel_map`) so per-run wall times are not
//! polluted by sibling runs sharing cores.

use std::time::Instant;

use ipu_ftl::SchemeKind;
use ipu_obs::{CounterSnapshot, ObsSnapshot, Phase};
use ipu_sim::{replay, SimReport};
use serde::{Deserialize, Serialize};

use crate::config::ExperimentConfig;
use crate::trace_set::TraceSet;

/// Schema version of [`BenchProfile`]; bump on breaking shape changes so the
/// perf gate refuses to compare incompatible baselines.
///
/// v2: per-(trace, scheme) run cells are gated individually (not just the
/// aggregate), the default scheme set includes IPU+, and the profile records
/// whether it was built in release mode so the gate can refuse debug runs.
///
/// v3: every run cell records simulated tail latency (`p99_ns`, `p999_ns`)
/// from the event-core replay; the gate refuses candidates missing them.
pub const BENCH_SCHEMA_VERSION: u32 = 3;

/// Exclusive wall time spent in one instrumented phase over the whole
/// profile run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseWall {
    /// [`Phase::label`] of the phase.
    pub phase: String,
    /// Spans recorded (e.g. GC rounds, FTL write calls).
    pub count: u64,
    pub wall_seconds: f64,
    /// Fraction of the total profile wall time (0..1).
    pub share: f64,
}

/// One (trace, scheme) replay's wall-clock measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunProfile {
    pub trace: String,
    pub scheme: SchemeKind,
    pub requests: u64,
    pub wall_seconds: f64,
    /// Simulated host requests replayed per wall second.
    pub ops_per_sec: f64,
    /// Simulated overall p99 latency of the run, ns (schema v3).
    #[serde(default)]
    pub p99_ns: u64,
    /// Simulated overall p99.9 latency of the run, ns (schema v3).
    #[serde(default)]
    pub p999_ns: u64,
}

/// The full benchmark profile: workload identity, throughput, per-phase
/// breakdown and the simulated-work counter fingerprint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchProfile {
    pub schema_version: u32,
    pub traces: Vec<String>,
    pub schemes: Vec<SchemeKind>,
    pub scale: f64,
    /// Total simulated host requests across all runs.
    pub requests: u64,
    /// Wall time of the whole profile (trace generation + replays).
    pub wall_seconds: f64,
    /// Aggregate throughput: `requests / wall_seconds`.
    pub sim_ops_per_sec: f64,
    /// Whether the binary was compiled with optimizations; the perf gate
    /// refuses debug-build profiles, whose numbers are meaningless.
    #[serde(default)]
    pub release: bool,
    pub phases: Vec<PhaseWall>,
    pub runs: Vec<RunProfile>,
    /// Monotonic counters summed over all runs: identical workloads produce
    /// identical fingerprints, so a baseline mismatch here means the perf
    /// numbers are not comparable (refresh the baseline instead).
    pub counters: CounterSnapshot,
}

impl BenchProfile {
    /// The recorded wall share of one phase, 0 if it never ran.
    pub fn phase_share(&self, phase: Phase) -> f64 {
        self.phases
            .iter()
            .find(|p| p.phase == phase.label())
            .map(|p| p.share)
            .unwrap_or(0.0)
    }
}

/// Folds one run's simulated-work counters into the profile fingerprint.
fn accumulate_counters(counters: &mut CounterSnapshot, r: &SimReport) {
    let mut add = |name: &str, v: u64| {
        let cur = counters.get(name).unwrap_or(0);
        counters.set(name, cur + v);
    };
    add("requests", r.requests);
    add("host_write_requests", r.ftl.host_write_requests);
    add("host_read_requests", r.ftl.host_read_requests);
    add("intra_page_updates", r.ftl.intra_page_updates);
    add("gc_runs_slc", r.ftl.gc_runs_slc);
    add("gc_runs_mlc", r.ftl.gc_runs_mlc);
    add("gc_moved_subpages", r.ftl.gc_moved_subpages);
    add("wear_leveling_migrations", r.ftl.wear_leveling_migrations);
    add("read_retries", r.ftl.read_retries);
    add("scrub_rewrites", r.ftl.scrub_rewrites);
    add("device_programs", r.device.programs);
    add("device_reads", r.device.reads);
    add("device_erases", r.device.erases);
}

/// Converts an obs snapshot into the serializable per-phase breakdown,
/// ordered by descending wall time.
pub fn phase_breakdown(snapshot: &ObsSnapshot, total_wall_seconds: f64) -> Vec<PhaseWall> {
    let mut phases: Vec<PhaseWall> = snapshot
        .phases
        .iter()
        .map(|p| {
            let wall_seconds = p.self_ns as f64 / 1e9;
            PhaseWall {
                phase: p.phase.label().to_string(),
                count: p.count,
                wall_seconds,
                share: if total_wall_seconds > 0.0 {
                    wall_seconds / total_wall_seconds
                } else {
                    0.0
                },
            }
        })
        .collect();
    phases.sort_by(|a, b| b.wall_seconds.total_cmp(&a.wall_seconds));
    phases
}

/// Runs the benchmark workload described by `cfg` sequentially with
/// instrumentation armed and returns the measured profile.
///
/// Arms and resets the process-wide `ipu-obs` accumulators: do not run
/// concurrently with other instrumented work.
pub fn run_profile(cfg: &ExperimentConfig) -> BenchProfile {
    ipu_obs::reset();
    ipu_obs::enable();
    let t0 = Instant::now();

    // Generate every trace exactly once, sequentially and inside the
    // instrumented window, so the trace_decode phase stays attributed and
    // wall_seconds keeps covering generation + replays.
    let traces = TraceSet::generate_with_threads(cfg, 1);

    let mut runs = Vec::new();
    let mut counters = CounterSnapshot::new();
    let mut total_requests = 0u64;
    for &trace in &cfg.traces {
        let requests = traces.get(trace);
        for &scheme in &cfg.schemes {
            let replay_cfg = cfg.replay_config(scheme);
            let t = Instant::now();
            let report = replay(&replay_cfg, &requests, trace.name());
            let wall_seconds = t.elapsed().as_secs_f64();
            total_requests += report.requests;
            accumulate_counters(&mut counters, &report);
            runs.push(RunProfile {
                trace: trace.name().to_string(),
                scheme,
                requests: report.requests,
                wall_seconds,
                ops_per_sec: report.requests as f64 / wall_seconds.max(1e-9),
                p99_ns: report.overall_latency.percentile_ns(99.0),
                p999_ns: report.overall_latency.percentile_ns(99.9),
            });
        }
    }

    let wall_seconds = t0.elapsed().as_secs_f64();
    ipu_obs::disable();
    let snapshot = ipu_obs::snapshot();

    BenchProfile {
        schema_version: BENCH_SCHEMA_VERSION,
        traces: cfg.traces.iter().map(|t| t.name().to_string()).collect(),
        schemes: cfg.schemes.clone(),
        scale: cfg.scale,
        requests: total_requests,
        wall_seconds,
        sim_ops_per_sec: total_requests as f64 / wall_seconds.max(1e-9),
        release: !cfg!(debug_assertions),
        phases: phase_breakdown(&snapshot, wall_seconds),
        runs,
        counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipu_trace::PaperTrace;

    // run_profile arms the process-wide obs accumulators; tests sharing them
    // must not overlap.
    static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn tiny_cfg() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::scaled(0.002);
        cfg.traces = vec![PaperTrace::Ts0];
        cfg.schemes = vec![SchemeKind::Ipu];
        cfg.threads = 1;
        cfg
    }

    #[test]
    fn profile_measures_phases_and_throughput() {
        let _guard = OBS_LOCK.lock().unwrap();
        let p = run_profile(&tiny_cfg());
        assert_eq!(p.schema_version, BENCH_SCHEMA_VERSION);
        assert_eq!(p.runs.len(), 1);
        assert!(p.requests > 1000, "ts0 at 0.2% is thousands of requests");
        assert!(p.wall_seconds > 0.0);
        assert!(p.sim_ops_per_sec > 0.0);
        // The hot phases must have been observed.
        let labels: Vec<&str> = p.phases.iter().map(|ph| ph.phase.as_str()).collect();
        assert!(labels.contains(&"trace_decode"), "phases: {labels:?}");
        assert!(labels.contains(&"ftl_write"), "phases: {labels:?}");
        assert!(labels.contains(&"ftl_read"), "phases: {labels:?}");
        // Exclusive accounting: phase shares cannot exceed the total.
        let share_sum: f64 = p.phases.iter().map(|ph| ph.share).sum();
        assert!(share_sum <= 1.0 + 0.25, "shares sum to {share_sum}");
        // Counter fingerprint captured the simulated work.
        assert_eq!(p.counters.get("requests"), Some(p.requests));
        assert!(p.counters.get("device_programs").unwrap_or(0) > 0);
        // Schema v3: every run carries simulated tail latency.
        for run in &p.runs {
            assert!(run.p99_ns > 0, "{}/{}: missing p99", run.trace, run.scheme);
            assert!(run.p999_ns >= run.p99_ns, "tail must be ordered");
        }
        // Instrumentation is disarmed again afterwards.
        assert!(!ipu_obs::enabled());
    }

    #[test]
    fn profile_counter_fingerprint_is_deterministic() {
        let _guard = OBS_LOCK.lock().unwrap();
        let a = run_profile(&tiny_cfg());
        let b = run_profile(&tiny_cfg());
        // Wall times differ run to run; the simulated work must not.
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.requests, b.requests);
        let d = b.counters.diff(&a.counters);
        assert!(d.is_empty(), "unexpected counter drift: {d:?}");
    }
}

//! Fleet fault-tolerance end-to-end properties.
//!
//! * **Zero-fault inertness**: a fleet run whose spec carries the explicit
//!   `FleetFaultPlan::none()` (and any health policy) serializes
//!   byte-identically to the default spec's run — the fault machinery is
//!   free when disabled. Together with the oracle tests in
//!   `fleet_oracle.rs` this pins the faulted runner to the pre-fault fleet.
//! * **No acked loss under mirroring**: for random fail-stop plans on a
//!   mirrored fleet, every logical request is either acked (clean or
//!   recovered via the partner) or counted lost — and with mirror pairs
//!   nothing is ever lost. Op conservation holds across the merge.

use ipu_core::ExperimentConfig;
use ipu_fleet::{
    run_fleet, run_fleet_detailed, FleetFaultPlan, FleetSpec, HealthPolicy, ReplicationPolicy,
    ShardPolicy,
};
use ipu_ftl::SchemeKind;
use ipu_trace::{IoRequest, OpKind};
use proptest::prelude::*;

fn base_workload(n: u64) -> Vec<IoRequest> {
    (0..n)
        .map(|i| {
            let op = if i % 3 == 2 {
                OpKind::Read
            } else {
                OpKind::Write
            };
            IoRequest::new(i * 1_800, op, (i % 80) * 65_536, 4096)
        })
        .collect()
}

fn tiny_cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::scaled(0.002);
    cfg.threads = 2;
    cfg
}

#[test]
fn zero_fault_plan_is_byte_identical_to_the_default_run() {
    let cfg = tiny_cfg();
    let base = base_workload(90);
    for policy in ShardPolicy::all() {
        let plain = FleetSpec::new(4, 6, policy).with_queue_depth(2);
        // Explicit none-plan plus a deliberately non-default health policy:
        // neither may leave a trace when the tolerance pass is inert.
        let spruced = FleetSpec::new(4, 6, policy)
            .with_queue_depth(2)
            .with_fault_plan(FleetFaultPlan::none())
            .with_health(HealthPolicy {
                max_retries: 7,
                timeout_ns: 123_456,
                ..HealthPolicy::default()
            });
        assert!(!spruced.tolerance_active());
        let a = run_fleet(&cfg, SchemeKind::Ipu, "ts0", &base, &plain);
        let b = run_fleet(&cfg, SchemeKind::Ipu, "ts0", &base, &spruced);
        assert_eq!(
            serde_json::to_string_pretty(&a).unwrap(),
            serde_json::to_string_pretty(&b).unwrap(),
            "{policy:?}: inert fault plan changed the report"
        );
        assert!(a.fleet_reliability.is_none(), "tolerance ran on inert spec");
    }
}

/// One mirrored fleet run under a random fail-stop plan; checks the ledger.
fn check_mirrored_fail_stop(
    k: usize,
    at_frac: f64,
    seed: u64,
    n_ops: u64,
) -> Result<(), TestCaseError> {
    let cfg = tiny_cfg();
    let base = base_workload(n_ops);
    let plan = FleetFaultPlan::fail_stop(4, k, at_frac, seed);
    let spec = FleetSpec::new(4, 8, ShardPolicy::Range)
        .with_queue_depth(2)
        .with_fault_plan(plan)
        .with_replication(ReplicationPolicy::MirrorPair);
    let (report, _) = run_fleet_detailed(&cfg, SchemeKind::Ipu, "ts0", &base, &spec);
    let fr = report
        .fleet_reliability
        .ok_or_else(|| TestCaseError::fail("tolerance pass did not run"))?;

    // Conservation: every logical request is acked or lost, every ack is
    // clean or recovered, and the device ops net of mirror traffic restate
    // the logical total.
    prop_assert_eq!(fr.logical_ops, n_ops);
    prop_assert_eq!(fr.logical_ops, fr.acked + fr.lost);
    prop_assert_eq!(fr.acked, fr.clean + fr.recovered);
    prop_assert_eq!(
        report
            .per_device
            .iter()
            .map(|d| d.ops - d.mirror_ops)
            .sum::<u64>(),
        report.total_ops
    );
    prop_assert_eq!(fr.hedges_won <= fr.hedges_fired, true);

    // The property: mirror pairs never lose an acked request — fail-stop
    // plans never kill both halves of a pair, so a replica always exists.
    prop_assert_eq!(fr.lost, 0);
    prop_assert_eq!(report.reliability.lost, 0);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_fail_stop_with_mirroring_never_loses_an_acked_request(
        k in 1usize..=2,
        at_frac in 0.1f64..0.9,
        seed in 0u64..1_000,
        n_ops in 40u64..120,
    ) {
        check_mirrored_fail_stop(k, at_frac, seed, n_ops)?;
    }
}
